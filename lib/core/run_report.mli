(** Structured outcome of a characterization batch.

    {!Pipeline.datasets_report} returns one entry per requested workload
    saying where its row came from — the cache, a resumed checkpoint, a
    fresh (possibly retried) computation — or why it is missing, with the
    failing exception and backtrace.  Consumers degrade gracefully: the
    CLI renders the report and keeps going with the surviving rows. *)

type status =
  | Computed of { attempts : int }
      (** freshly characterized; [attempts > 1] means retries happened *)
  | Cached  (** served from the on-disk cache *)
  | Resumed  (** recovered from an interrupted run's checkpoint *)
  | Failed of { attempts : int; error : string; backtrace : string }
      (** attempt budget exhausted; no row for this workload *)

type timing = { elapsed_s : float; minor_words : float }
(** Per-workload characterization cost, measured unconditionally (two
    clock reads and two GC counter reads per workload) so that report
    structure does not depend on whether metrics are enabled. *)

type entry = { id : string; status : status; timing : timing option }
(** [timing] is [Some] only for freshly computed workloads. *)

type t

val create : entry list -> t
val entries : t -> entry list
val total : t -> int
val computed : t -> int
val cached : t -> int
val resumed : t -> int

val retried : t -> int
(** Workloads that needed more than one attempt (whether or not they
    eventually succeeded). *)

val failures : t -> entry list
val all_ok : t -> bool

val timings : t -> (string * timing) list
(** Per-workload stage timings for the entries that were computed this
    run, in report order.  Used by [mica profile]. *)

val summary : t -> string
(** One line: ["5 computed (1 retried), 116 cached, 1 resumed, 0 failed"]. *)

val render : t -> string
(** Multi-line report: the summary plus one block per failure with its
    error and backtrace. *)
