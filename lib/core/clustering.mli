(** Workload clustering (section VI, Figure 6).

    K-means over a (typically reduced) workload dataset, with K chosen by
    sweeping K = k_min..k_max and applying the paper's BIC rule: the
    smallest K whose score is within 90% of the maximum. *)

type t = {
  dataset : Dataset.t;  (** the clustered dataset (rows = workloads) *)
  k : int;
  assignments : int array;
  result : Mica_stats.Kmeans.result;
  bic_sweep : (int * float) array;  (** (K, BIC score) over the sweep *)
}

val cluster :
  ?k_min:int ->
  ?k_max:int ->
  ?bic_frac:float ->
  ?prefer:Mica_stats.Bic.preference ->
  ?restarts:int ->
  ?seed:int64 ->
  ?pool:Mica_util.Pool.t ->
  Dataset.t ->
  t
(** Normalizes the dataset (z-score) and clusters.  Defaults: K in 1..70,
    90% BIC rule taking the peak-scoring K ({!Mica_stats.Bic.Peak} — see
    the preference discussion there), 3 k-means restarts, fixed seed.  The
    BIC k-sweep and the restarts within each fit fan out over [pool]; the
    clustering is identical at any pool size. *)

val members : t -> int -> string array
(** Row names assigned to a cluster, in dataset order. *)

val cluster_of : t -> string -> int option

val sorted_clusters : t -> (int * string array) list
(** Clusters ordered by size (desc), singletons last;
    each with its member names. *)
