(** The end-to-end characterization pipeline.

    For each workload, one trace is generated and fanned out to both the
    microarchitecture-independent analyzer (47 characteristics) and the
    machine models (7 hardware-counter metrics) — a single pass, like
    running ATOM and DCPI over the same execution.

    Results are cached as CSV under [cache_dir] keyed by trace length and
    model version, so repeated experiments and the CLI share work. *)

type config = {
  icount : int;  (** dynamic instructions per workload trace *)
  ppm_order : int;  (** PPM predictor maximum context length *)
  cache_dir : string option;  (** [None] disables caching *)
  progress : bool;  (** log one line per characterized workload *)
  jobs : int;
      (** worker domains for characterization; workloads are independent
          and deterministic, so results are identical at any parallelism *)
}

val default_config : config
(** 200k instructions, PPM order 8, cache under ["results/cache"],
    progress off, parallelism = {!Mica_util.Pool.default_jobs} (the
    [MICA_JOBS] environment variable when set to a positive integer,
    otherwise available cores capped at 8). *)

val model_version : string
(** Bumped whenever the generator or analyzers change semantics; part of
    the cache key. *)

val characterize : config -> Mica_workloads.Workload.t -> float array * float array
(** [(mica_47, hpc_7)] for one workload (no caching). *)

val datasets : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t * Dataset.t
(** [(mica, hpc)] datasets over the given workloads, in order.  Rows are
    workload ids.  Cached rows are reused; missing rows are computed and
    the cache updated. *)

val mica_dataset : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t
val hpc_dataset : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t
