(** The end-to-end characterization pipeline.

    For each workload, one trace is generated and fanned out to both the
    microarchitecture-independent analyzer (47 characteristics) and the
    machine models (7 hardware-counter metrics) — a single pass, like
    running ATOM and DCPI over the same execution.

    Results are cached as CSV under [cache_dir] keyed by trace length and
    model version, so repeated experiments and the CLI share work.  The
    cache tier is crash-safe: files are committed atomically (temp file +
    rename) under a content checksum, corrupt files are quarantined and
    recomputed, and each finished workload is checkpointed so a run killed
    mid-batch resumes from the last committed workload.  Workload failures
    are contained per task (bounded retry, then reported in
    {!Run_report.t}) instead of aborting the batch. *)

type run_sink = {
  run_root : string;  (** run directories land under this root, e.g. ["runs"] *)
  run_tag : string;  (** usually the CLI subcommand; names the directory *)
  run_seeds : (string * string) list;  (** named seeds recorded in the manifest *)
}

type config = {
  icount : int;  (** dynamic instructions per workload trace *)
  ppm_order : int;  (** PPM predictor maximum context length *)
  cache_dir : string option;  (** [None] disables caching *)
  progress : bool;  (** log one line per characterized workload *)
  jobs : int;
      (** worker domains for characterization; workloads are independent
          and deterministic, so results are identical at any parallelism *)
  retries : int;
      (** extra attempts per workload before it is reported as failed *)
  run : run_sink option;
      (** when set, every {!datasets_report} batch commits a
          self-describing run directory ([Mica_run.Run_dir]) holding the
          manifest, both datasets and the metrics snapshot; commit
          failure degrades to a warning, never an error *)
  sketch : int option;
      (** when set, characterize through the fixed-memory sketch
          analyzers ([Mica_sketch.Sketch]) under this byte budget
          instead of the exact tables.  Estimated vectors bypass the
          characterization cache and checkpoints entirely — in both
          directions — so exact and sketched results never mix. *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation: when set, {!characterize} polls this
          between trace chunks (every [Chunk.capacity] instructions) and
          raises {!Cancelled} as soon as it returns [true].  The serve
          daemon uses it to abandon work whose deadline has passed. *)
}

exception Cancelled
(** Raised by {!characterize} when [config.cancel] fires.  Cancellation
    is observation-free: no partial vector escapes and no cache or
    checkpoint entry is written for the abandoned workload. *)

val default_config : config
(** 200k instructions, PPM order 8, cache under ["results/cache"],
    progress off, parallelism = {!Mica_util.Pool.default_jobs} (the
    [MICA_JOBS] environment variable when set to a positive integer,
    otherwise available cores capped at 8), 2 retries, exact analyzers
    (no sketch). *)

val model_version : string
(** Bumped whenever the generator or analyzers change semantics; part of
    the cache key. *)

val characterize : config -> Mica_workloads.Workload.t -> float array * float array
(** [(mica_47, hpc_7)] for one workload (no caching, no supervision).
    Raises {!Cancelled} if [config.cancel] fires mid-trace. *)

val warm_cache : config -> (string * float array * float array) list
(** Every complete [(id, mica_47, hpc_7)] row currently in the on-disk
    characterization caches for this config's [(icount, model_version)]
    key, sorted by id; [[]] when caching is disabled.  Rows failing the
    checksum or arity checks are excluded exactly as in
    {!datasets_report}.  The serve daemon's warm start. *)

val flush_cache : config -> (string * (float array * float array)) list -> unit
(** Merge [(id, (mica_47, hpc_7))] entries into the on-disk caches:
    current cache contents are re-loaded, given entries override by id,
    and both files are committed through the same atomic checksummed
    writer as {!datasets_report}.  Never raises — failures degrade to a
    warning.  No-op when caching is disabled or [entries] is empty. *)

val committed_run_dir : unit -> string option
(** The run directory committed by the most recent {!datasets_report}
    with [config.run] set, if any.  The CLI uses it to refresh the run's
    [metrics.json] at process exit with the full-command snapshot. *)

val datasets_report :
  ?config:config ->
  Mica_workloads.Workload.t list ->
  Dataset.t * Dataset.t * Run_report.t
(** [(mica, hpc, report)] over the given workloads.  Rows are workload
    ids, in request order, restricted to the workloads that produced a
    vector — from the cache, from a resumed checkpoint, or freshly
    computed (with up to [config.retries] retries).  Workloads whose
    attempt budget is exhausted are simply absent from the datasets and
    carried as [Failed] entries in the report; this function never raises
    on workload or cache-file failure. *)

val datasets : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t * Dataset.t
(** {!datasets_report} with strict semantics: raises [Failure] naming the
    first permanently failed workload, so callers that must have every row
    fail loudly. *)

val mica_dataset : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t
val hpc_dataset : ?config:config -> Mica_workloads.Workload.t list -> Dataset.t
