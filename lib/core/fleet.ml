module Machine = Mica_uarch.Machine
module W = Mica_workloads
module Pool = Mica_util.Pool
module Stats = Mica_stats

type t = {
  machine_names : string array;
  metric_names : string array;
  workload_ids : string array;
  matrix : float array array;
  icount : int;
}

let column_names t =
  Array.concat
    (Array.to_list
       (Array.map
          (fun m -> Array.map (fun metric -> m ^ "." ^ metric) t.metric_names)
          t.machine_names))

let check_configs configs =
  if configs = [] then invalid_arg "Fleet.characterize: no machine configs";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : Machine.config) ->
      if Hashtbl.mem seen c.Machine.name then
        invalid_arg ("Fleet.characterize: duplicate machine name " ^ c.Machine.name);
      Hashtbl.add seen c.Machine.name ())
    configs

let assemble ~configs ~icount ~workloads rows =
  let n_metrics = Array.length Machine.metric_names in
  let n_machines = List.length configs in
  let matrix =
    Array.map
      (fun vecs ->
        let row = Array.make (n_machines * n_metrics) 0.0 in
        List.iteri (fun m v -> Array.blit v 0 row (m * n_metrics) n_metrics) vecs;
        row)
      rows
  in
  {
    machine_names = Array.of_list (List.map (fun (c : Machine.config) -> c.Machine.name) configs);
    metric_names = Array.copy Machine.metric_names;
    workload_ids = Array.map W.Workload.id workloads;
    matrix;
    icount;
  }

let characterize ?jobs ~configs ~icount workloads =
  check_configs configs;
  let ws = Array.of_list workloads in
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  (* One generated trace per workload, fanned out to every machine model in
     a single pass; workloads are characterized pool-parallel.  Each index
     is pure and writes only its own slot, so the result is bit-identical
     at any [jobs]. *)
  let rows =
    Pool.using ~jobs (fun pool ->
        Pool.map pool (Array.length ws)
          (fun i ->
            Machine.measure_all configs ws.(i).W.Workload.model ~icount
            |> List.map Machine.to_vector))
  in
  assemble ~configs ~icount ~workloads:ws rows

let characterize_n_pass ~configs ~icount workloads =
  check_configs configs;
  let ws = Array.of_list workloads in
  (* One full pass over the corpus per machine: regenerates every
     workload's trace N times.  The fanout path must match this
     bit-for-bit; it exists as the differential oracle and bench
     baseline. *)
  let per_machine =
    List.map
      (fun cfg ->
        Array.map (fun (w : W.Workload.t) ->
            Machine.to_vector (Machine.measure cfg w.W.Workload.model ~icount))
          ws)
      configs
  in
  let rows =
    Array.init (Array.length ws) (fun i -> List.map (fun col -> col.(i)) per_machine)
  in
  assemble ~configs ~icount ~workloads:ws rows

let to_table t =
  { Mica_run.Run_dir.row_names = t.workload_ids; columns = column_names t; cells = t.matrix }

let machine_dataset t m =
  let n_metrics = Array.length t.metric_names in
  let data =
    Array.map (fun row -> Array.sub row (m * n_metrics) n_metrics) t.matrix
  in
  Dataset.create ~names:t.workload_ids ~features:t.metric_names data

type report_row = { machine : string; mica_corr : float; hpc_corr : float option }

type report = {
  rows : report_row list;
  cross : (string * string * float) list;
}

let report ?(mica : Space.t option) ?(hpc : Space.t option) t =
  let spaces =
    Array.to_list
      (Array.mapi
         (fun m name -> (name, Space.of_dataset (machine_dataset t m)))
         t.machine_names)
  in
  let corr a b = Stats.Correlation.pearson a.Space.distances b.Space.distances in
  let rows =
    List.map
      (fun (name, s) ->
        {
          machine = name;
          mica_corr = (match mica with Some ms -> corr s ms | None -> nan);
          hpc_corr = Option.map (fun hs -> corr s hs) hpc;
        })
      spaces
  in
  let cross =
    List.concat_map
      (fun (a, sa) ->
        List.filter_map
          (fun (b, sb) -> if a < b then Some (a, b, corr sa sb) else None)
          spaces)
      spaces
  in
  { rows; cross }

let render_report r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "fleet counter spaces vs the microarchitecture-independent space\n\n";
  Buffer.add_string buf
    (Printf.sprintf "%-14s %10s %10s\n" "machine" "mica_corr" "hpc_corr");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-14s %10.3f %10s\n" row.machine row.mica_corr
           (match row.hpc_corr with Some c -> Printf.sprintf "%10.3f" c | None -> "-")))
    r.rows;
  Buffer.add_string buf "\ndistance correlation between machine counter spaces:\n";
  List.iter
    (fun (a, b, c) ->
      Buffer.add_string buf (Printf.sprintf "  %-14s vs %-14s %7.3f\n" a b c))
    r.cross;
  Buffer.contents buf
