(** One driver per table and figure of the paper's evaluation.

    Each function returns structured results; [render_*] companions format
    them as text in the shape of the paper's tables.  The CLI and the
    benchmark harness are thin wrappers over this module, and EXPERIMENTS.md
    records paper-versus-measured values produced here. *)

module Context : sig
  type t = {
    config : Pipeline.config;
    workloads : Mica_workloads.Workload.t list;
    mica : Dataset.t;  (** 122 x 47 *)
    hpc : Dataset.t;  (** 122 x 7 *)
    mica_space : Space.t;
    hpc_space : Space.t;
    fitness : Mica_select.Fitness.t;  (** over the normalized MICA space *)
    report : Run_report.t;  (** where each row came from; names any failures *)
  }

  val load : ?config:Pipeline.config -> ?workloads:Mica_workloads.Workload.t list -> unit -> t
  (** Characterizes (or loads from cache) every workload.  Defaults to the
      full 122-benchmark registry.  Degrades gracefully: workloads whose
      characterization fails permanently are dropped from [workloads] and
      the datasets (and reported in [report]) instead of aborting the
      experiment. *)
end

(** {1 Table I — benchmark inventory} *)

val render_table1 : unit -> string

(** {1 Table II — the 47 characteristics} *)

val render_table2 : unit -> string

(** {1 Figure 1 — distance scatter and correlation} *)

type fig1 = {
  points : (float * float) array;  (** (mica distance, hpc distance) per pair *)
  correlation : float;  (** paper: 0.46 *)
}

val fig1 : Context.t -> fig1
val render_fig1 : fig1 -> string
(** Text density plot plus the correlation coefficient. *)

(** {1 Table III — tuple classification} *)

val table3 : ?frac:float -> Context.t -> Classify.counts
val render_table3 : Classify.counts -> string

(** {1 Figures 2 and 3 — the bzip2 vs blast case study} *)

val fig2 : ?a:string -> ?b:string -> Context.t -> Case_study.comparison
(** Hardware counters plus instruction mix (paper default pair:
    SPEC bzip2/graphic vs BioInfoMark blast). *)

val fig3 : ?a:string -> ?b:string -> Context.t -> Case_study.comparison
(** The 47 microarchitecture-independent characteristics. *)

(** {1 Feature selection (sections V-A and V-B)} *)

val run_ce : Context.t -> Mica_select.Correlation_elimination.step list

val run_ga :
  ?config:Mica_select.Genetic.config -> ?seed:int64 -> Context.t -> Mica_select.Genetic.result

(** {1 Figure 4 — ROC curves} *)

type roc_entry = { label : string; n_features : int; curve : Mica_stats.Roc.curve }

val fig4 :
  ?frac:float ->
  Context.t ->
  ga:Mica_select.Genetic.result ->
  ce:Mica_select.Correlation_elimination.step list ->
  roc_entry list
(** Curves for: all 47 characteristics; correlation elimination with 17, 12
    and 7 retained; the GA selection.  Paper AUCs: 0.72 / 0.67 / 0.64 /
    0.69. *)

val render_fig4 : roc_entry list -> string

(** {1 Figure 5 — distance correlation vs. retained characteristics} *)

type fig5 = {
  ce_points : (int * float) array;  (** (retained count, rho) along the CE sweep *)
  ga_point : int * float;  (** paper: (8, 0.876); CE at 17 gives 0.823 *)
}

val fig5 : Context.t -> ga:Mica_select.Genetic.result -> fig5
val render_fig5 : fig5 -> string

(** {1 Table IV — the selected key characteristics} *)

val render_table4 : Mica_select.Genetic.result -> string

(** {1 Figure 6 — clustering and kiviat diagrams} *)

type fig6 = {
  clustering : Clustering.t;
  axes : string array;  (** short names of the key characteristics *)
  plots : Kiviat.plot list;  (** sorted by cluster *)
}

val fig6 : ?k_max:int -> Context.t -> selected:int array -> fig6
val render_fig6 : fig6 -> string

(** {1 Extended characteristic set (the released tool's direction)} *)

val extended_dataset : Context.t -> Dataset.t
(** All workloads characterized with {!Mica_analysis.Extended} (60
    characteristics), cached alongside the main datasets. *)

type extended_result = {
  ext_ga : Mica_select.Genetic.result;  (** GA over the 60-characteristic space *)
  ext_selected_names : string array;
  ext_extension_picked : int;  (** how many of the selected are extension characteristics *)
}

val extended_selection :
  ?config:Mica_select.Genetic.config -> ?seed:int64 -> Context.t -> extended_result

val render_extended : extended_result -> string

(** {1 Characterization-cost model (section V's 110 vs 37 machine-days)} *)

type cost = {
  full_seconds : float;  (** measuring all 47 characteristics *)
  reduced_seconds : float;  (** measuring only the selected ones *)
  speedup : float;  (** paper: about 3x *)
  sample : int;  (** workloads timed *)
}

val cost_model : ?sample:int -> Context.t -> selected:int array -> cost
val render_cost : cost -> string
