module W = Mica_workloads
module U = Mica_uarch

type interval_ipc = { instructions : int; cycles : int }

type t = {
  phases : Phases.t;
  interval_results : interval_ipc array;
  true_ipc : float;
  estimated_ipc : float;
  error : float;
}

(* Per-interval machine results come from one warm simulation: the
   in-order model's counters are sampled at every interval boundary. *)
let per_interval_ipc program ~icount ~interval =
  let model = U.Inorder.create () in
  let boundaries = ref [] in
  let seen = ref 0 in
  (* A chunked fanout of model and sampler would let the model run a whole
     chunk ahead of the sampler, so interval boundaries inside a chunk
     would read counters from the chunk's end.  Stepping the model
     per-instruction inside one sink keeps the required ordering: the model
     observes each instruction before the sampler reads its counters. *)
  let sink =
    Mica_trace.Sink.make ~name:"interval-sampler" (fun c ->
        for i = 0 to c.Mica_trace.Chunk.len - 1 do
          U.Inorder.step_instr model (Mica_trace.Chunk.get c i);
          incr seen;
          if !seen mod interval = 0 then begin
            let r = U.Inorder.result model in
            boundaries := (r.U.Inorder.instructions, r.U.Inorder.cycles) :: !boundaries
          end
        done)
  in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink in
  let final = U.Inorder.result model in
  let cumulative = Array.of_list (List.rev !boundaries) in
  let intervals =
    Array.mapi
      (fun i (instrs, cycles) ->
        let prev_i, prev_c = if i = 0 then (0, 0) else cumulative.(i - 1) in
        { instructions = instrs - prev_i; cycles = cycles - prev_c })
      cumulative
  in
  (intervals, float_of_int final.U.Inorder.instructions /. float_of_int final.U.Inorder.cycles)

let validate ?(interval = 10_000) (w : W.Workload.t) ~icount =
  let phases = Phases.analyze ~interval w.W.Workload.model ~icount in
  let interval_results, true_ipc = per_interval_ipc w.W.Workload.model ~icount ~interval in
  (* phase analysis and machine sampling may disagree by one trailing
     partial interval; align on the shorter *)
  let n = min (Array.length phases.Phases.assignments) (Array.length interval_results) in
  let cpi_of i =
    let r = interval_results.(i) in
    if r.instructions = 0 then 0.0 else float_of_int r.cycles /. float_of_int r.instructions
  in
  (* weight = share of instructions belonging to each phase (within the
     aligned prefix) *)
  let k = phases.Phases.k in
  let instr_per_phase = Array.make k 0 in
  for i = 0 to n - 1 do
    let p = phases.Phases.assignments.(i) in
    instr_per_phase.(p) <- instr_per_phase.(p) + interval_results.(i).instructions
  done;
  let total_instrs = Array.fold_left ( + ) 0 instr_per_phase in
  let estimated_cpi = ref 0.0 in
  for p = 0 to k - 1 do
    let rep = phases.Phases.representatives.(p) in
    if rep >= 0 && rep < n && total_instrs > 0 then
      estimated_cpi :=
        !estimated_cpi
        +. (float_of_int instr_per_phase.(p) /. float_of_int total_instrs *. cpi_of rep)
  done;
  let estimated_ipc = if !estimated_cpi > 0.0 then 1.0 /. !estimated_cpi else 0.0 in
  {
    phases;
    interval_results;
    true_ipc;
    estimated_ipc;
    error = (if true_ipc > 0.0 then Float.abs (estimated_ipc -. true_ipc) /. true_ipc else 0.0);
  }

let validate_many ?interval workloads ~icount =
  List.map (fun w -> (W.Workload.id w, validate ?interval w ~icount)) workloads

let render results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "SimPoint validation: phase-weighted representative IPC vs whole-trace IPC\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-40s %7s %9s %9s %7s\n" "workload" "phases" "true IPC" "est. IPC"
       "error");
  List.iter
    (fun (id, t) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-40s %7d %9.3f %9.3f %6.1f%%\n" id t.phases.Phases.k t.true_ipc
           t.estimated_ipc (100.0 *. t.error)))
    results;
  let errors = Array.of_list (List.map (fun (_, t) -> t.error) results) in
  if Array.length errors > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  mean error %.1f%%, max %.1f%%\n"
         (100.0 *. Mica_stats.Descriptive.mean errors)
         (100.0 *. snd (Mica_stats.Descriptive.min_max errors)));
  Buffer.contents buf
