type t = {
  chosen : int array;
  representative_of : int array;
  max_distance : float;
  mean_distance : float;
}

(* medoid: the observation minimizing total distance to all others *)
let medoid space =
  let n = Space.n space in
  let best = ref 0 and best_sum = ref infinity in
  for i = 0 to n - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. Space.distance space i j
    done;
    if !sum < !best_sum then begin
      best_sum := !sum;
      best := i
    end
  done;
  !best

let k_center space ~k =
  let n = Space.n space in
  if k < 1 || k > n then invalid_arg "Subsetting.k_center: k out of range";
  let chosen = ref [ medoid space ] in
  (* nearest.(i) = (distance to nearest chosen, that chosen index) *)
  let nearest = Array.init n (fun i -> (Space.distance space i (List.hd !chosen), List.hd !chosen)) in
  while List.length !chosen < k do
    (* farthest point from the current selection *)
    let far = ref 0 and far_d = ref neg_infinity in
    Array.iteri
      (fun i (d, _) ->
        if d > !far_d then begin
          far_d := d;
          far := i
        end)
      nearest;
    chosen := !far :: !chosen;
    Array.iteri
      (fun i (d, _) ->
        let d' = Space.distance space i !far in
        if d' < d then nearest.(i) <- (d', !far))
      nearest
  done;
  let representative_of = Array.map snd nearest in
  let distances = Array.map fst nearest in
  {
    chosen = Array.of_list (List.rev !chosen);
    representative_of;
    max_distance = Array.fold_left Float.max 0.0 distances;
    mean_distance = Mica_stats.Descriptive.mean distances;
  }

(* Same greedy loop as [k_center], but over a columnar matrix with
   distances computed on demand: O(k n d) work and O(n) memory instead of
   the O(n^2 d) condensed matrix behind [Space.of_dataset].  Distances,
   comparisons and tie-breaks replicate [k_center] exactly, so with
   [seed] set to the naive medoid the chosen set is identical. *)
let k_center_scalable ?seed cm ~k =
  let module Colmat = Mica_stats.Colmat in
  let n = Colmat.rows cm in
  if k < 1 || k > n then invalid_arg "Subsetting.k_center_scalable: k out of range";
  let seed =
    match seed with
    | Some s ->
        if s < 0 || s >= n then invalid_arg "Subsetting.k_center_scalable: seed out of range";
        s
    | None ->
        (* O(n d) proxy for the O(n^2 d) medoid: the row nearest the
           column-mean centroid *)
        let d = Colmat.cols cm in
        let mean = Array.init d (fun j -> fst (Colmat.column_mean_std cm j)) in
        let dist = Colmat.distances_from_row cm mean in
        let best = ref 0 in
        for i = 1 to n - 1 do
          if dist.(i) < dist.(!best) then best := i
        done;
        !best
  in
  let chosen = ref [ seed ] in
  let nearest = Array.init n (fun i -> (Colmat.distance cm i seed, seed)) in
  while List.length !chosen < k do
    let far = ref 0 and far_d = ref neg_infinity in
    Array.iteri
      (fun i (d, _) ->
        if d > !far_d then begin
          far_d := d;
          far := i
        end)
      nearest;
    chosen := !far :: !chosen;
    Array.iteri
      (fun i (d, _) ->
        let d' = Colmat.distance cm i !far in
        if d' < d then nearest.(i) <- (d', !far))
      nearest
  done;
  let representative_of = Array.map snd nearest in
  let distances = Array.map fst nearest in
  {
    chosen = Array.of_list (List.rev !chosen);
    representative_of;
    max_distance = Array.fold_left Float.max 0.0 distances;
    mean_distance = Mica_stats.Descriptive.mean distances;
  }

let sweep space ~ks = List.map (fun k -> (k, (k_center space ~k).max_distance)) ks

let render space t =
  let names = space.Space.dataset.Dataset.names in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "reduced suite of %d benchmarks (covering radius %.3f, mean distance %.3f):\n"
       (Array.length t.chosen) t.max_distance t.mean_distance);
  Array.iter
    (fun c ->
      let covered =
        List.filter
          (fun i -> t.representative_of.(i) = c && i <> c)
          (List.init (Array.length names) Fun.id)
      in
      Buffer.add_string buf (Printf.sprintf "* %s\n" names.(c));
      Buffer.add_string buf
        (Printf.sprintf "    represents %d others%s\n" (List.length covered)
           (if covered = [] then ""
            else
              ": "
              ^ String.concat ", "
                  (List.filteri (fun i _ -> i < 4) (List.map (fun i -> names.(i)) covered))
              ^ if List.length covered > 4 then ", ..." else "")))
    t.chosen;
  Buffer.contents buf
