module Corpus = Mica_workloads.Corpus
module Characteristics = Mica_analysis.Characteristics
module Rng = Mica_util.Rng
module Obs = Mica_obs.Obs

let m_rows = Obs.counter "corpus.rows"

let default_anchors = 4
let default_icount = 50_000

let anchor_vectors ~anchors ~icount fam =
  let config = { Pipeline.default_config with icount; cache_dir = None; progress = false } in
  Array.init anchors (fun i ->
      let mica, _hpc = Pipeline.characterize config (Corpus.member fam i) in
      mica)

let generate ?(anchors = default_anchors) ?(icount = default_icount) ~size () =
  Obs.span "core.corpus_generate" @@ fun () ->
  if size < 0 then invalid_arg "Corpus_gen.generate: negative size";
  if anchors < 1 then invalid_arg "Corpus_gen.generate: anchors must be positive";
  let fams = Array.of_list Corpus.families in
  let nfam = Array.length fams in
  let per_family = Array.map (anchor_vectors ~anchors ~icount) fams in
  let cols = Characteristics.count in
  let names = Array.make size "" in
  let data = Array.make_matrix size cols 0.0 in
  for r = 0 to size - 1 do
    let fam_idx = r mod nfam in
    let idx = r / nfam in
    let id = Corpus.member_id fams.(fam_idx) idx in
    names.(r) <- id;
    let av = per_family.(fam_idx) in
    if idx < anchors then
      (* anchor members carry their measured vector verbatim *)
      Array.blit av.(idx) 0 data.(r) 0 cols
    else begin
      (* seeded convex blend of the family anchors, squared to bias each
         member toward one anchor so the corpus spreads around them
         rather than collapsing onto their mean *)
      let rng = Rng.of_string ("vec/" ^ id) in
      let w = Array.init anchors (fun _ -> let u = Rng.float rng 1.0 in u *. u) in
      let total = Array.fold_left ( +. ) 0.0 w in
      let w =
        if total > 0.0 then Array.map (fun x -> x /. total) w
        else Array.make anchors (1.0 /. float_of_int anchors)
      in
      let row = data.(r) in
      for c = 0 to cols - 1 do
        let acc = ref 0.0 in
        for a = 0 to anchors - 1 do
          acc := !acc +. (w.(a) *. av.(a).(c))
        done;
        (* bounded multiplicative jitter keeps signs and zero columns
           (a zero characteristic stays exactly zero) *)
        let jitter = Float.max 0.5 (Float.min 1.5 (Rng.gaussian rng ~mu:1.0 ~sigma:0.02)) in
        row.(c) <- !acc *. jitter
      done
    end
  done;
  Obs.add m_rows (float_of_int size);
  Dataset.create ~names ~features:(Array.copy Characteristics.short_names) data
