module Workload = Mica_workloads.Workload

type config = {
  icount : int;
  ppm_order : int;
  cache_dir : string option;
  progress : bool;
  jobs : int;
}

let default_config =
  {
    icount = 200_000;
    ppm_order = 8;
    cache_dir = Some "results/cache";
    progress = false;
    jobs = Mica_util.Pool.default_jobs ();
  }

let model_version = "v3"

let characterize config w =
  let analyzer = Mica_analysis.Analyzer.create ~ppm_order:config.ppm_order () in
  let counters = Mica_uarch.Hw_counters.create () in
  let sink =
    Mica_trace.Sink.fanout
      [ Mica_analysis.Analyzer.sink analyzer; Mica_uarch.Hw_counters.sink counters ]
  in
  let (_ : int) = Mica_trace.Generator.run w.Workload.model ~icount:config.icount ~sink in
  ( Mica_analysis.Analyzer.vector analyzer,
    Mica_uarch.Hw_counters.to_vector (Mica_uarch.Hw_counters.result counters) )

let cache_path config kind =
  Option.map
    (fun dir -> Filename.concat dir (Printf.sprintf "%s-%s-%d.csv" kind model_version config.icount))
    config.cache_dir

(* A cache file is an optimization, never a dependency: anything wrong with
   it (corrupt CSV, truncated rows, unreadable file) means the rows are
   recomputed, not crashed on. *)
let load_cache path =
  if Sys.file_exists path then begin
    try
      let ds = Dataset.of_csv path in
      let tbl = Hashtbl.create (Dataset.rows ds) in
      Array.iteri (fun i name -> Hashtbl.replace tbl name ds.Dataset.data.(i)) ds.Dataset.names;
      tbl
    with Failure _ | Sys_error _ | Invalid_argument _ -> Hashtbl.create 16
  end
  else Hashtbl.create 16

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save_cache path ~features tbl =
  mkdir_p (Filename.dirname path);
  let entries = Hashtbl.fold (fun name row acc -> (name, row) :: acc) tbl [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let ds =
    Dataset.create
      ~names:(Array.of_list (List.map fst entries))
      ~features
      (Array.of_list (List.map snd entries))
  in
  Dataset.to_csv ds path

(* Characterize the missing workloads, fanning them out over the shared
   domain pool.  Workloads are independent and internally deterministic, so
   the result is identical at any parallelism; workers only compute — all
   cache reads and writes stay in the calling domain. *)
let characterize_many config missing =
  let jobs = max 1 config.jobs in
  let work = Array.of_list missing in
  if Array.length work = 0 then []
  else begin
    if config.progress then
      if jobs = 1 || Array.length work = 1 then
        Array.iter
          (fun w ->
            Logs.app (fun f ->
                f "characterizing %s (%d instructions)" (Workload.id w) config.icount))
          work
      else
        Logs.app (fun f ->
            f "characterizing %d workloads on %d domains (%d instructions each)"
              (Array.length work) jobs config.icount);
    Mica_util.Pool.using ~jobs (fun pool ->
        Array.to_list
          (Mica_util.Pool.map pool (Array.length work) (fun i ->
               let w = work.(i) in
               let m, h = characterize config w in
               (Workload.id w, m, h))))
  end

let datasets ?(config = default_config) workloads =
  let mica_path = cache_path config "mica" and hpc_path = cache_path config "hpc" in
  let mica_cache = Option.fold ~none:(Hashtbl.create 16) ~some:load_cache mica_path in
  let hpc_cache = Option.fold ~none:(Hashtbl.create 16) ~some:load_cache hpc_path in
  let cached id =
    match (Hashtbl.find_opt mica_cache id, Hashtbl.find_opt hpc_cache id) with
    | Some m, Some h
      when Array.length m = Mica_analysis.Characteristics.count
           && Array.length h = Mica_uarch.Hw_counters.count ->
      Some (m, h)
    | _ -> None
  in
  let missing = List.filter (fun w -> cached (Workload.id w) = None) workloads in
  let computed = characterize_many config missing in
  let dirty = computed <> [] in
  List.iter
    (fun (id, m, h) ->
      Hashtbl.replace mica_cache id m;
      Hashtbl.replace hpc_cache id h)
    computed;
  let rows =
    List.map
      (fun w ->
        let id = Workload.id w in
        match cached id with
        | Some (m, h) -> (id, m, h)
        | None -> assert false (* just computed *))
      workloads
  in
  if dirty then begin
    Option.iter
      (fun p -> save_cache p ~features:Mica_analysis.Characteristics.short_names mica_cache)
      mica_path;
    Option.iter
      (fun p -> save_cache p ~features:Mica_uarch.Hw_counters.short_names hpc_cache)
      hpc_path
  end;
  let names = Array.of_list (List.map (fun (id, _, _) -> id) rows) in
  let mica =
    Dataset.create ~names ~features:Mica_analysis.Characteristics.short_names
      (Array.of_list (List.map (fun (_, m, _) -> m) rows))
  in
  let hpc =
    Dataset.create ~names ~features:Mica_uarch.Hw_counters.short_names
      (Array.of_list (List.map (fun (_, _, h) -> h) rows))
  in
  (mica, hpc)

let mica_dataset ?config workloads = fst (datasets ?config workloads)
let hpc_dataset ?config workloads = snd (datasets ?config workloads)
