module Workload = Mica_workloads.Workload
module Fault = Mica_util.Fault
module Csv = Mica_util.Csv
module Obs = Mica_obs.Obs

let m_cache_hits = Obs.counter "cache.hits"
let m_cache_misses = Obs.counter "cache.misses"
let m_cache_quarantined = Obs.counter "cache.quarantined"
let m_cache_resumed = Obs.counter "cache.resumed"
let m_workloads = Obs.counter "pipeline.workloads"

type run_sink = {
  run_root : string;
  run_tag : string;
  run_seeds : (string * string) list;
}

type config = {
  icount : int;
  ppm_order : int;
  cache_dir : string option;
  progress : bool;
  jobs : int;
  retries : int;
  run : run_sink option;
  sketch : int option;
  cancel : (unit -> bool) option;
}

let default_config =
  {
    icount = 200_000;
    ppm_order = 8;
    cache_dir = Some "results/cache";
    progress = false;
    jobs = Mica_util.Pool.default_jobs ();
    retries = 2;
    run = None;
    sketch = None;
    cancel = None;
  }

exception Cancelled

let model_version = "v3"

let characterize config w =
  Obs.span "pipeline.characterize" @@ fun () ->
  let counters = Mica_uarch.Hw_counters.create () in
  let mica_sink, mica_vector =
    match config.sketch with
    | None ->
      let analyzer = Mica_analysis.Analyzer.create ~ppm_order:config.ppm_order () in
      (Mica_analysis.Analyzer.sink analyzer, fun () -> Mica_analysis.Analyzer.vector analyzer)
    | Some bytes ->
      let sk =
        Mica_sketch.Sketch.create ~ppm_order:config.ppm_order
          ~plan:(Mica_sketch.Sketch.plan ~bytes ()) ()
      in
      (Mica_sketch.Sketch.sink sk, fun () -> Mica_sketch.Sketch.vector sk)
  in
  let sinks = [ mica_sink; Mica_uarch.Hw_counters.sink counters ] in
  let sinks =
    (* Cooperative cancellation: the check runs once per chunk (every
       [Chunk.capacity] instructions), first in the fanout so no analyzer
       consumes a chunk the deadline already forbids.  Abandoning a trace
       mid-stream is safe — analyzer state is per-call and discarded. *)
    match config.cancel with
    | None -> sinks
    | Some cancelled ->
      Mica_trace.Sink.make ~name:"cancel" (fun _chunk -> if cancelled () then raise Cancelled)
      :: sinks
  in
  let sink = Mica_trace.Sink.fanout sinks in
  (match config.cancel with
  | Some cancelled when cancelled () -> raise Cancelled
  | _ -> ());
  let (_ : int) = Mica_trace.Generator.run w.Workload.model ~icount:config.icount ~sink in
  (mica_vector (), Mica_uarch.Hw_counters.to_vector (Mica_uarch.Hw_counters.result counters))

let cache_path config kind =
  Option.map
    (fun dir -> Filename.concat dir (Printf.sprintf "%s-%s-%d.csv" kind model_version config.icount))
    config.cache_dir

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* ---------------- crash-safe file commits ----------------

   Cache and checkpoint files are committed atomically: the contents go to
   a sibling [.tmp] file which is renamed over the target, so a kill at
   any instant leaves either the old file or the new one — never a
   truncated mix.  [save_cache] additionally prepends a
   [#mica-cache <version> md5:<hex>] line over the CSV body; [load_cache]
   verifies it and quarantines (renames aside) any file whose body does
   not match its recorded digest, instead of silently consuming a
   half-written or bit-rotted table. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let atomic_write path contents =
  Fault.check Fault.Cache_write ~key:(Hashtbl.hash path);
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let cache_header_prefix = "#mica-cache "

let checksum_header prefix body =
  Printf.sprintf "%s%s md5:%s\n" prefix model_version (Digest.to_hex (Digest.string body))

(* [Some body] iff the header names this model version and the digest
   matches; [Error] distinguishes "stale/foreign version" (ignore the
   file) from "corrupt" (quarantine it). *)
let verify_checksum header body =
  match String.split_on_char ' ' (String.trim header) with
  | [ version; digest ] when String.length digest > 4 && String.sub digest 0 4 = "md5:" ->
    if version <> model_version then Error `Stale
    else if String.sub digest 4 (String.length digest - 4) = Digest.to_hex (Digest.string body)
    then Ok body
    else Error `Corrupt
  | _ -> Error `Corrupt

let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let quarantine path reason =
  Obs.incr m_cache_quarantined;
  let dest = path ^ ".quarantined" in
  (try Sys.rename path dest with Sys_error _ -> ());
  Logs.warn (fun f -> f "cache %s %s; quarantined as %s, rows will be recomputed" path reason dest)

(* The CSV body, laid out exactly like [Dataset.to_csv] (sorted rows,
   %.17g floats) so caches round-trip bit-exactly and two runs over the
   same workloads commit byte-identical files. *)
let cache_body ~features tbl =
  let entries = Hashtbl.fold (fun name row acc -> (name, row) :: acc) tbl [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let b = Buffer.create 4096 in
  Buffer.add_string b (String.concat "," (List.map Csv.escape_field ("name" :: Array.to_list features)));
  Buffer.add_char b '\n';
  List.iter
    (fun (name, row) ->
      Buffer.add_string b (Csv.escape_field name);
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf ",%.17g" v)) row;
      Buffer.add_char b '\n')
    entries;
  Buffer.contents b

let save_cache path ~features tbl =
  Obs.span "cache.save" @@ fun () ->
  let body = cache_body ~features tbl in
  atomic_write path (checksum_header cache_header_prefix body ^ body)

(* ---------------- lenient cache loading ----------------

   A cache file is an optimization, never a dependency: this function
   never raises.  Files written by [save_cache] carry a checksum header
   and are quarantined wholesale on mismatch; headerless files (older
   caches, hand-edited tables) fall through to per-row parsing where any
   malformed row — wrong arity, unparsable or non-finite value — discards
   only that entry. *)
let load_cache ~features path =
  Obs.span "cache.load" @@ fun () ->
  let empty () = Hashtbl.create 64 in
  if not (Sys.file_exists path) then empty ()
  else begin
    match
      Fault.check Fault.Cache_read ~key:(Hashtbl.hash path);
      read_file path
    with
    | exception Fault.Injected _ ->
      Logs.warn (fun f -> f "cache %s: injected read fault; recomputing" path);
      empty ()
    | exception Sys_error msg ->
      Logs.warn (fun f -> f "cache %s unreadable (%s); recomputing" path msg);
      empty ()
    | contents ->
      let csv =
        if String.length contents >= String.length cache_header_prefix
           && String.sub contents 0 (String.length cache_header_prefix) = cache_header_prefix
        then begin
          let header, body = split_first_line contents in
          let header =
            String.sub header (String.length cache_header_prefix)
              (String.length header - String.length cache_header_prefix)
          in
          match verify_checksum header body with
          | Ok body -> Some body
          | Error `Stale ->
            Logs.warn (fun f -> f "cache %s was written by another model version; ignoring" path);
            None
          | Error `Corrupt ->
            quarantine path "failed its content checksum";
            None
        end
        else Some contents (* legacy headerless cache: parse leniently *)
      in
      match csv with
      | None -> empty ()
      | Some csv ->
        let arity = Array.length features in
        let tbl = empty () in
        let dropped = ref 0 in
        let parse_row line =
          match Csv.parse_line line with
          | name :: fields when List.length fields = arity -> (
            let row = Array.make arity 0.0 in
            try
              List.iteri
                (fun j s ->
                  match float_of_string_opt s with
                  | Some v when Float.is_finite v -> row.(j) <- v
                  | Some _ | None -> raise Exit)
                fields;
              Hashtbl.replace tbl name row
            with Exit -> incr dropped)
          | "name" :: _ -> () (* feature header (arity checked below) *)
          | _ -> incr dropped
        in
        (match String.split_on_char '\n' csv with
        | [] -> ()
        | header :: body ->
          (* A header with different features means the whole table answers
             a different question (column mismatch): ignore it all. *)
          if Csv.parse_line header = "name" :: Array.to_list features then
            List.iter
              (fun line -> if String.trim line <> "" then parse_row line)
              body
          else
            Logs.warn (fun f -> f "cache %s has a foreign feature header; ignoring" path));
        if !dropped > 0 then
          Logs.warn (fun f -> f "cache %s: discarded %d malformed row(s)" path !dropped);
        tbl
  end

(* ---------------- cache warm-start / flush ----------------

   The serve daemon fronts the same on-disk caches as the CLI: at startup
   it absorbs every complete row (warm start), and on drain it merges its
   in-memory results back (flush), so served work survives restarts and is
   shared with direct [mica characterize] runs.  Both go through the same
   checksummed load/save as [datasets_report], so a flush commits exactly
   the bytes a direct run would. *)

let warm_cache config =
  match config.cache_dir with
  | None -> []
  | Some _ ->
    let mica_features = Mica_analysis.Characteristics.short_names in
    let hpc_features = Mica_uarch.Hw_counters.short_names in
    let load kind features =
      match cache_path config kind with
      | None -> Hashtbl.create 16
      | Some p -> load_cache ~features p
    in
    let mica_cache = load "mica" mica_features in
    let hpc_cache = load "hpc" hpc_features in
    Hashtbl.fold
      (fun id m acc ->
        match Hashtbl.find_opt hpc_cache id with
        | Some h
          when Array.length m = Mica_analysis.Characteristics.count
               && Array.length h = Mica_uarch.Hw_counters.count ->
          (id, m, h) :: acc
        | _ -> acc)
      mica_cache []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let flush_cache config entries =
  match config.cache_dir with
  | None -> ()
  | Some _ ->
    if entries <> [] then begin
      let mica_features = Mica_analysis.Characteristics.short_names in
      let hpc_features = Mica_uarch.Hw_counters.short_names in
      let mica_path = cache_path config "mica" and hpc_path = cache_path config "hpc" in
      (* Merge over the current on-disk tables so a concurrent direct run's
         rows are kept, then commit through the same atomic+checksummed
         writer. *)
      let mica_cache =
        Option.fold ~none:(Hashtbl.create 16) ~some:(load_cache ~features:mica_features) mica_path
      in
      let hpc_cache =
        Option.fold ~none:(Hashtbl.create 16) ~some:(load_cache ~features:hpc_features) hpc_path
      in
      List.iter
        (fun (id, (m, h)) ->
          Hashtbl.replace mica_cache id m;
          Hashtbl.replace hpc_cache id h)
        entries;
      try
        Option.iter (fun p -> save_cache p ~features:mica_features mica_cache) mica_path;
        Option.iter (fun p -> save_cache p ~features:hpc_features hpc_cache) hpc_path
      with Fault.Injected _ | Sys_error _ ->
        Logs.warn (fun f -> f "cache flush failed; served results not persisted")
    end

(* ---------------- per-workload checkpoints ----------------

   During [characterize_many] each worker commits its finished workload to
   a private checkpoint file (atomic rename, own checksum header), so a
   run killed mid-batch resumes from the last committed workload instead
   of the last committed batch.  Checkpoints are merged into the caches on
   the next run and deleted once the main cache commit succeeds. *)

let ckpt_header_prefix = "#mica-ckpt "

let checkpoint_dir config = Option.map (fun d -> Filename.concat d "checkpoints") config.cache_dir

let checkpoint_path config dir id =
  let key = Digest.to_hex (Digest.string (Printf.sprintf "%s|%d|%s" model_version config.icount id)) in
  Filename.concat dir (Printf.sprintf "ckpt-%s.csv" key)

let checkpoint_body config id (m, h) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "%s,%d\n" (Csv.escape_field id) config.icount);
  let row values =
    Array.iteri
      (fun j v -> Buffer.add_string b (Printf.sprintf "%s%.17g" (if j = 0 then "" else ",") v))
      values;
    Buffer.add_char b '\n'
  in
  row m;
  row h;
  Buffer.contents b

(* Called from worker domains; each task owns a distinct file, and a
   checkpoint is pure optimization, so commit failures (disk, injected
   fault) are swallowed — the workload's result still reaches the caches
   through the outcome array. *)
let commit_checkpoint config dir w (m, h) =
  let id = Workload.id w in
  let body = checkpoint_body config id (m, h) in
  try atomic_write (checkpoint_path config dir id) (checksum_header ckpt_header_prefix body ^ body)
  with Fault.Injected _ | Sys_error _ ->
    Logs.debug (fun f -> f "checkpoint for %s not committed" id)

let read_checkpoint config path =
  match
    Fault.check Fault.Cache_read ~key:(Hashtbl.hash path);
    read_file path
  with
  | exception (Fault.Injected _ | Sys_error _) -> None
  | contents ->
    if String.length contents < String.length ckpt_header_prefix
       || String.sub contents 0 (String.length ckpt_header_prefix) <> ckpt_header_prefix
    then None
    else begin
      let header, body = split_first_line contents in
      let header =
        String.sub header (String.length ckpt_header_prefix)
          (String.length header - String.length ckpt_header_prefix)
      in
      match verify_checksum header body with
      | Error (`Stale | `Corrupt) -> None
      | Ok body -> (
        let parse_row arity line =
          let fields = Csv.parse_line line in
          if List.length fields <> arity then None
          else begin
            let row = Array.make arity 0.0 in
            try
              List.iteri
                (fun j s ->
                  match float_of_string_opt s with
                  | Some v when Float.is_finite v -> row.(j) <- v
                  | Some _ | None -> raise Exit)
                fields;
              Some row
            with Exit -> None
          end
        in
        match String.split_on_char '\n' body with
        | id_line :: m_line :: h_line :: _ -> (
          match
            ( Csv.parse_line id_line,
              parse_row Mica_analysis.Characteristics.count m_line,
              parse_row Mica_uarch.Hw_counters.count h_line )
          with
          | [ id; icount ], Some m, Some h when int_of_string_opt icount = Some config.icount ->
            Some (id, m, h)
          | _ -> None)
        | _ -> None)
    end

(* Committed checkpoints of an interrupted run, in deterministic (sorted
   filename) order.  Unreadable or stale checkpoint files — including
   [.tmp] leftovers of a mid-commit kill — are deleted. *)
let load_checkpoints config =
  match checkpoint_dir config with
  | None -> []
  | Some dir ->
    if not (Sys.file_exists dir) then []
    else begin
      let files =
        (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
        |> List.filter (fun f -> String.length f >= 5 && String.sub f 0 5 = "ckpt-")
        |> List.sort compare
      in
      List.filter_map
        (fun f ->
          let path = Filename.concat dir f in
          match read_checkpoint config path with
          | Some r -> Some (path, r)
          | None ->
            (try Sys.remove path with Sys_error _ -> ());
            Logs.debug (fun fmt -> fmt "discarded unusable checkpoint %s" path);
            None)
        files
    end

(* ---------------- supervised characterization ----------------

   Workloads fan out over the domain pool in supervised mode: a failing
   workload is retried up to [config.retries] extra attempts and then
   reported, never aborting its batch-mates.  Workloads are independent
   and internally deterministic, so the outcome array is identical at any
   parallelism.  Workers compute and commit their own checkpoint; the main
   cache files are only ever written by the calling domain. *)
let characterize_many config missing =
  let jobs = max 1 config.jobs in
  let work = Array.of_list missing in
  if Array.length work = 0 then [||]
  else begin
    if config.progress then
      if jobs = 1 || Array.length work = 1 then
        Array.iter
          (fun w ->
            Logs.app (fun f ->
                f "characterizing %s (%d instructions)" (Workload.id w) config.icount))
          work
      else
        Logs.app (fun f ->
            f "characterizing %d workloads on %d domains (%d instructions each)"
              (Array.length work) jobs config.icount);
    let ckpt_dir = checkpoint_dir config in
    Option.iter mkdir_p ckpt_dir;
    Mica_util.Pool.using ~jobs (fun pool ->
        Mica_util.Pool.run_results ~retries:(max 0 config.retries) pool (Array.length work)
          (fun i ->
            let w = work.(i) in
            (* Stage cost is measured unconditionally (two clock and two GC
               counter reads per workload), so reports have the same shape
               whether or not metrics are enabled. *)
            let t0 = Unix.gettimeofday () in
            let minor0 = Gc.minor_words () in
            let m, h = characterize config w in
            let timing =
              {
                Run_report.elapsed_s = Unix.gettimeofday () -. t0;
                minor_words = Gc.minor_words () -. minor0;
              }
            in
            Option.iter (fun dir -> commit_checkpoint config dir w (m, h)) ckpt_dir;
            (Workload.id w, m, h, timing)))
  end

(* ---------------- run-directory commit ----------------

   With [config.run] set, every characterization batch commits a
   self-describing run directory under [run.run_root]: manifest (full
   config, seeds, git rev, fault spec), both datasets and the current
   metrics snapshot, each under a recorded checksum (Mica_run.Run_dir).
   The commit is an observation, never a dependency: failures degrade to
   a warning and results still flow to the caller.  The CLI refreshes the
   metrics artifact at exit via {!committed_run_dir}, so spans recorded
   after this point (e.g. the GA stage) reach the run too. *)

let last_run_dir = ref None
let committed_run_dir () = !last_run_dir

let commit_run_dir config sink (mica : Dataset.t) (hpc : Dataset.t) report =
  let module R = Mica_run.Run_dir in
  let table (ds : Dataset.t) =
    { R.row_names = ds.Dataset.names; columns = ds.Dataset.features; cells = ds.Dataset.data }
  in
  let manifest =
    {
      Mica_run.Manifest.schema = Mica_run.Manifest.schema_version;
      created = R.timestamp ();
      tag = sink.run_tag;
      subcommand = sink.run_tag;
      argv = Array.to_list Sys.argv;
      git_rev = Mica_run.Run_io.git_rev ();
      icount = config.icount;
      ppm_order = config.ppm_order;
      jobs = config.jobs;
      retries = config.retries;
      cache = config.cache_dir <> None;
      mica_jobs_env = Sys.getenv_opt "MICA_JOBS";
      fault_spec = Option.map Fault.to_string (Fault.installed ());
      seeds = sink.run_seeds;
      workloads = Dataset.rows mica;
      report = Run_report.summary report;
      files = [];
    }
  in
  let artifacts =
    [
      { R.filename = R.mica_file; contents = R.csv_of_table (table mica) };
      { R.filename = R.hpc_file; contents = R.csv_of_table (table hpc) };
      { R.filename = R.metrics_file; contents = Obs.to_json (Obs.snapshot ()) };
    ]
  in
  match R.commit ~root:sink.run_root ~manifest ~artifacts () with
  | dir ->
    last_run_dir := Some dir;
    Logs.debug (fun f -> f "committed run directory %s" dir)
  | exception (Fault.Injected _ | Sys_error _) ->
    Logs.warn (fun f -> f "run directory commit failed; results are unaffected")

let datasets_report ?(config = default_config) workloads =
  (* Sketched vectors are bounded-error estimates: never mix them into
     the exact characterization cache or checkpoints, in either
     direction. *)
  let config = if config.sketch = None then config else { config with cache_dir = None } in
  let mica_features = Mica_analysis.Characteristics.short_names in
  let hpc_features = Mica_uarch.Hw_counters.short_names in
  let mica_path = cache_path config "mica" and hpc_path = cache_path config "hpc" in
  let mica_cache =
    Option.fold ~none:(Hashtbl.create 16) ~some:(load_cache ~features:mica_features) mica_path
  in
  let hpc_cache =
    Option.fold ~none:(Hashtbl.create 16) ~some:(load_cache ~features:hpc_features) hpc_path
  in
  (* Fold in per-workload checkpoints left by an interrupted run. *)
  let checkpoints = load_checkpoints config in
  let resumed_ids = Hashtbl.create 16 in
  List.iter
    (fun (_, (id, m, h)) ->
      if not (Hashtbl.mem mica_cache id && Hashtbl.mem hpc_cache id) then
        Hashtbl.replace resumed_ids id ();
      Hashtbl.replace mica_cache id m;
      Hashtbl.replace hpc_cache id h)
    checkpoints;
  let cached id =
    match (Hashtbl.find_opt mica_cache id, Hashtbl.find_opt hpc_cache id) with
    | Some m, Some h
      when Array.length m = Mica_analysis.Characteristics.count
           && Array.length h = Mica_uarch.Hw_counters.count ->
      Some (m, h)
    | _ -> None
  in
  let missing = List.filter (fun w -> cached (Workload.id w) = None) workloads in
  Obs.add m_workloads (float_of_int (List.length workloads));
  Obs.add m_cache_misses (float_of_int (List.length missing));
  let served w = cached (Workload.id w) <> None in
  let resumed w = Hashtbl.mem resumed_ids (Workload.id w) in
  Obs.add m_cache_hits
    (float_of_int (List.length (List.filter (fun w -> served w && not (resumed w)) workloads)));
  Obs.add m_cache_resumed
    (float_of_int (List.length (List.filter (fun w -> served w && resumed w) workloads)));
  let outcomes = characterize_many config missing in
  let missing_arr = Array.of_list missing in
  let outcome_entries = Hashtbl.create 16 in
  Array.iteri
    (fun i (o : _ Mica_util.Pool.outcome) ->
      let id = Workload.id missing_arr.(i) in
      let status, timing =
        match o.Mica_util.Pool.result with
        | Ok (id', m, h, timing) ->
          Hashtbl.replace mica_cache id' m;
          Hashtbl.replace hpc_cache id' h;
          (Run_report.Computed { attempts = o.Mica_util.Pool.attempts }, Some timing)
        | Error { Mica_util.Pool.error; backtrace } ->
          ( Run_report.Failed
              {
                attempts = o.Mica_util.Pool.attempts;
                error = Printexc.to_string error;
                backtrace;
              },
            None )
      in
      Hashtbl.replace outcome_entries id (status, timing))
    outcomes;
  let report =
    Run_report.create
      (List.map
         (fun w ->
           let id = Workload.id w in
           let status, timing =
             match Hashtbl.find_opt outcome_entries id with
             | Some st -> st
             | None ->
               ((if Hashtbl.mem resumed_ids id then Run_report.Resumed else Run_report.Cached), None)
           in
           { Run_report.id; status; timing })
         workloads)
  in
  (* Commit the merged caches.  A failed commit (disk trouble, injected
     write fault) degrades to a warning — results still flow to the caller
     — and keeps the checkpoints so the work is not lost for next time. *)
  let computed_ok =
    Array.exists
      (fun (o : _ Mica_util.Pool.outcome) ->
        match o.Mica_util.Pool.result with Ok _ -> true | Error _ -> false)
      outcomes
  in
  if computed_ok || checkpoints <> [] then begin
    let saved =
      try
        Option.iter (fun p -> save_cache p ~features:mica_features mica_cache) mica_path;
        Option.iter (fun p -> save_cache p ~features:hpc_features hpc_cache) hpc_path;
        true
      with Fault.Injected _ | Sys_error _ ->
        Logs.warn (fun f -> f "cache commit failed; keeping checkpoints for resume");
        false
    in
    if saved then begin
      (* Checkpoints are subsumed by the committed caches. *)
      List.iter (fun (p, _) -> try Sys.remove p with Sys_error _ -> ()) checkpoints;
      match checkpoint_dir config with
      | None -> ()
      | Some dir ->
        Array.iteri
          (fun i (o : _ Mica_util.Pool.outcome) ->
            match o.Mica_util.Pool.result with
            | Ok _ -> (
              let p = checkpoint_path config dir (Workload.id missing_arr.(i)) in
              try Sys.remove p with Sys_error _ -> ())
            | Error _ -> ())
          outcomes
    end
  end;
  let rows =
    List.filter_map
      (fun w ->
        let id = Workload.id w in
        Option.map (fun (m, h) -> (id, m, h)) (cached id))
      workloads
  in
  let names = Array.of_list (List.map (fun (id, _, _) -> id) rows) in
  let mica =
    Dataset.create ~names ~features:mica_features
      (Array.of_list (List.map (fun (_, m, _) -> m) rows))
  in
  let hpc =
    Dataset.create ~names ~features:hpc_features
      (Array.of_list (List.map (fun (_, _, h) -> h) rows))
  in
  (match config.run with
  | None -> ()
  | Some sink -> commit_run_dir config sink mica hpc report);
  (mica, hpc, report)

let datasets ?config workloads =
  let mica, hpc, report = datasets_report ?config workloads in
  (match Run_report.failures report with
  | [] -> ()
  | { Run_report.id; status = Failed { attempts; error; _ }; _ } :: _ ->
    failwith
      (Printf.sprintf "Pipeline.datasets: workload %s failed after %d attempt(s): %s" id attempts
         error)
  | _ :: _ -> assert false);
  (mica, hpc)

let mica_dataset ?config workloads = fst (datasets ?config workloads)
let hpc_dataset ?config workloads = snd (datasets ?config workloads)
