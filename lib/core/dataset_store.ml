module Colmat = Mica_stats.Colmat
module Run_io = Mica_run.Run_io

type t = { names : string array; features : string array; data : Colmat.t }

let magic = "MICD"
let version = 1
let header_bytes = 56
let host_endian_tag = if Sys.big_endian then 2 else 1

let align8 n = (n + 7) land lnot 7

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)

let add_lp_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let metadata_blob ~names ~features =
  let buf = Buffer.create 4096 in
  Array.iter (add_lp_string buf) names;
  Array.iter (add_lp_string buf) features;
  Buffer.contents buf

let data_bytes (m : Mica_stats.Matrix.t) ~rows ~cols =
  let b = Bytes.create (rows * cols * 8) in
  let set = if Sys.big_endian then Bytes.set_int64_be else Bytes.set_int64_le in
  for j = 0 to cols - 1 do
    let base = j * rows in
    for i = 0 to rows - 1 do
      set b ((base + i) * 8) (Int64.bits_of_float m.(i).(j))
    done
  done;
  Bytes.unsafe_to_string b

let write path (ds : Dataset.t) =
  let rows = Dataset.rows ds and cols = Dataset.cols ds in
  let meta = metadata_blob ~names:ds.Dataset.names ~features:ds.Dataset.features in
  let data = data_bytes ds.Dataset.data ~rows ~cols in
  let data_offset = align8 (header_bytes + String.length meta) in
  let buf = Buffer.create (data_offset + String.length data) in
  Buffer.add_string buf magic;
  Buffer.add_uint8 buf version;
  Buffer.add_uint8 buf host_endian_tag;
  Buffer.add_uint8 buf 0;
  Buffer.add_uint8 buf 0;
  add_u32 buf (String.length meta);
  add_u32 buf rows;
  add_u32 buf cols;
  add_u32 buf data_offset;
  Buffer.add_string buf (Digest.string meta);
  Buffer.add_string buf (Digest.string data);
  Buffer.add_string buf meta;
  Buffer.add_string buf (String.make (data_offset - header_bytes - String.length meta) '\000');
  Buffer.add_string buf data;
  Run_io.atomic_write path (Buffer.contents buf)

(* --- reading ------------------------------------------------------- *)

let corrupt fmt = Printf.ksprintf (fun s -> Error (Run_io.Corrupt s)) fmt

let u32 s off =
  let v = Int32.to_int (String.get_int32_le s off) in
  if v < 0 then None else Some v

let read_exact ic len =
  try Ok (really_input_string ic len)
  with End_of_file -> corrupt "file shorter than %d bytes" len

let ( let* ) = Result.bind

(* parse the length-prefixed string table: [count] entries starting at
   [off] in [blob]; returns (strings, next offset) *)
let parse_table blob off count =
  let arr = Array.make count "" in
  let rec go i off =
    if i = count then Ok off
    else if off + 4 > String.length blob then corrupt "metadata table truncated"
    else
      match u32 blob off with
      | None -> corrupt "negative string length in metadata"
      | Some len ->
          if off + 4 + len > String.length blob then corrupt "metadata table truncated"
          else begin
            arr.(i) <- String.sub blob (off + 4) len;
            go (i + 1) (off + 4 + len)
          end
  in
  let* last = go 0 off in
  Ok (arr, last)

type header = {
  h_meta_len : int;
  h_rows : int;
  h_cols : int;
  h_data_offset : int;
  h_meta_md5 : string;
  h_data_md5 : string;
}

let parse_header h =
  if String.sub h 0 4 <> magic then corrupt "bad magic (not a MICD dataset)"
  else if Char.code h.[4] <> version then
    Error (Run_io.Foreign_version (Printf.sprintf "dataset format v%d" (Char.code h.[4])))
  else if Char.code h.[5] <> host_endian_tag then
    corrupt "endianness mismatch (dataset written on a %s-endian host)"
      (if Char.code h.[5] = 2 then "big" else "little")
  else
    match (u32 h 8, u32 h 12, u32 h 16, u32 h 20) with
    | Some h_meta_len, Some h_rows, Some h_cols, Some h_data_offset ->
        Ok
          {
            h_meta_len;
            h_rows;
            h_cols;
            h_data_offset;
            h_meta_md5 = String.sub h 24 16;
            h_data_md5 = String.sub h 40 16;
          }
    | _ -> corrupt "negative field in header"

let with_open_in path f =
  match open_in_bin path with
  | exception Sys_error _ ->
      if Sys.file_exists path then Error (Run_io.Unreadable path) else Error Run_io.Missing
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let load_header ic path =
  let* h = read_exact ic header_bytes in
  let* hd = parse_header h in
  let file_size = in_channel_length ic in
  let expected = hd.h_data_offset + (hd.h_rows * hd.h_cols * 8) in
  if hd.h_data_offset < align8 (header_bytes + hd.h_meta_len) then
    corrupt "data offset overlaps metadata"
  else if file_size <> expected then
    corrupt "truncated or padded: %d bytes, want %d (%s)" file_size expected path
  else
    let* meta = read_exact ic hd.h_meta_len in
    if Digest.string meta <> hd.h_meta_md5 then corrupt "metadata digest mismatch"
    else
      let* names, off = parse_table meta 0 hd.h_rows in
      let* features, last = parse_table meta off hd.h_cols in
      if last <> String.length meta then corrupt "trailing bytes in metadata"
      else Ok (hd, names, features)

let load path =
  with_open_in path @@ fun ic ->
  let* hd, names, features = load_header ic path in
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.map_file fd ~pos:(Int64.of_int hd.h_data_offset) Bigarray.float64 Bigarray.c_layout
          false
          [| hd.h_rows * hd.h_cols |])
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Run_io.Unreadable (path ^ ": " ^ Unix.error_message e))
  | genarray ->
      let data =
        Colmat.of_array1 ~rows:hd.h_rows ~cols:hd.h_cols (Bigarray.array1_of_genarray genarray)
      in
      Ok { names; features; data }

let verify path =
  with_open_in path @@ fun ic ->
  let* hd, _, _ = load_header ic path in
  seek_in ic hd.h_data_offset;
  let* data = read_exact ic (hd.h_rows * hd.h_cols * 8) in
  if Digest.string data <> hd.h_data_md5 then corrupt "data digest mismatch" else Ok ()

(* --- conversions --------------------------------------------------- *)

let to_dataset t =
  Dataset.create ~names:t.names ~features:t.features (Colmat.to_matrix t.data)

let of_dataset (ds : Dataset.t) =
  { names = ds.Dataset.names; features = ds.Dataset.features; data = Colmat.of_matrix ds.Dataset.data }

let import_csv ~csv path =
  match Dataset.of_csv csv with
  | exception Failure msg -> Error msg
  | exception Sys_error msg -> Error msg
  | ds ->
      write path ds;
      Ok ()

let export_csv t path = Dataset.to_csv (to_dataset t) path
