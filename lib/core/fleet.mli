(** One-pass fleet characterization: the corpus against N machine models.

    Each workload's trace is generated exactly once and fanned out to all
    N machine sinks ({!Mica_uarch.Machine.measure_all}); workloads run
    pool-parallel.  Because trace generation dominates machine simulation,
    this is markedly faster than N single-machine passes — and the result
    is bit-identical to them, which {!characterize_n_pass} exists to prove
    (and to serve as the benchmark baseline). *)

type t = {
  machine_names : string array;
  metric_names : string array;  (** {!Mica_uarch.Machine.metric_names} *)
  workload_ids : string array;
  matrix : float array array;
      (** [workloads x (machines * metrics)], machine-major columns: the
          six counters of machine 0, then of machine 1, ... *)
  icount : int;
}

val characterize :
  ?jobs:int ->
  configs:Mica_uarch.Machine.config list ->
  icount:int ->
  Mica_workloads.Workload.t list ->
  t
(** One chunk pass per workload fanned out to every machine.  [jobs]
    defaults to [Pool.default_jobs ()]; results are bit-identical at any
    [jobs].  Raises [Invalid_argument] on an empty config list or
    duplicate machine names. *)

val characterize_n_pass :
  configs:Mica_uarch.Machine.config list ->
  icount:int ->
  Mica_workloads.Workload.t list ->
  t
(** The sequential oracle: one full corpus pass per machine, regenerating
    each workload's trace N times.  Must equal {!characterize}
    bit-for-bit. *)

val column_names : t -> string array
(** ["<machine>.<metric>"], machine-major, matching [matrix] columns. *)

val to_table : t -> Mica_run.Run_dir.table
(** The N×6-per-workload counter matrix as a run-directory table. *)

val machine_dataset : t -> int -> Dataset.t
(** [machine_dataset t m] is machine [m]'s 6-metric slice of the matrix. *)

type report_row = {
  machine : string;
  mica_corr : float;
      (** distance correlation of this machine's counter space with the
          microarchitecture-independent space ([nan] when not supplied) *)
  hpc_corr : float option;
}

type report = {
  rows : report_row list;
  cross : (string * string * float) list;
      (** distance correlation for each machine pair *)
}

val report : ?mica:Space.t -> ?hpc:Space.t -> t -> report
(** Builds each machine's counter {!Space} and correlates benchmark
    distances across machines and against the supplied reference
    spaces. *)

val render_report : report -> string
