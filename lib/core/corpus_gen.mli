(** Scaled corpus dataset synthesis.

    Characterizing one workload costs milliseconds; characterizing a
    100x corpus would cost minutes on every CI run.  This module makes
    the 10k-row regime cheap while staying anchored to real pipeline
    output: it fully characterizes a handful of {e anchor} members per
    {!Mica_workloads.Corpus} family (actual swept programs, run through
    {!Pipeline.characterize}), then synthesizes every member's
    47-characteristic vector as a seeded convex blend of its family's
    anchors plus a small multiplicative jitter drawn from the member id.

    Properties the scale tests rely on:

    - {e deterministic}: the result is a pure function of
      [(size, anchors, icount)] — same corpus bit-for-bit on every
      machine, which is what lets CI regenerate a corpus and gate it
      against a committed baseline with [mica compare];
    - {e anchored}: every vector lies in the convex hull of measured
      characteristic vectors (up to the bounded jitter), so distances,
      clusters and subsets behave like characterization output, not
      arbitrary noise;
    - {e labeled like the real thing}: rows are {!Mica_workloads.Corpus}
      member ids, columns the 47 short names of
      {!Mica_analysis.Characteristics} — datasets drop into every
      existing consumer (classify, subset, coverage, the stores).

    Ground truth at corpus scale remains available the slow way:
    [Pipeline.datasets (Corpus.members ~size)]. *)

val generate : ?anchors:int -> ?icount:int -> size:int -> unit -> Dataset.t
(** [generate ~size ()] is a [size] x 47 dataset over
    [Corpus.members ~size] row ids.  [anchors] (default 4) is the number
    of characterized anchor members per family; [icount] (default
    50_000) the anchor trace length.  Raises [Invalid_argument] on
    [size < 0] or [anchors < 1]. *)
