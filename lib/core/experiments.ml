module Stats = Mica_stats
module Select = Mica_select
module Workloads = Mica_workloads
module Analysis = Mica_analysis

module Context = struct
  type t = {
    config : Pipeline.config;
    workloads : Workloads.Workload.t list;
    mica : Dataset.t;
    hpc : Dataset.t;
    mica_space : Space.t;
    hpc_space : Space.t;
    fitness : Select.Fitness.t;
    report : Run_report.t;
  }

  (* Graceful degradation: permanently failed workloads are dropped from
     [workloads] (keeping it aligned with the dataset rows) and carried in
     [report] for the caller to surface; every experiment then runs over
     the survivors. *)
  let load ?(config = Pipeline.default_config) ?(workloads = Workloads.Registry.all) () =
    let mica, hpc, report = Pipeline.datasets_report ~config workloads in
    (match Run_report.failures report with
    | [] -> ()
    | failed ->
      Logs.warn (fun f ->
          f "%d workload(s) failed characterization; continuing with %d survivors"
            (List.length failed) (Dataset.rows mica)));
    let workloads =
      List.filter
        (fun w -> Dataset.row_index mica (Workloads.Workload.id w) <> None)
        workloads
    in
    let mica_space = Space.of_dataset mica in
    let hpc_space = Space.of_dataset hpc in
    let fitness = Select.Fitness.create mica_space.Space.normalized in
    { config; workloads; mica; hpc; mica_space; hpc_space; fitness; report }
end

(* ---------------- Table I ---------------- *)

let render_table1 () =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf "%-20s %-12s %-22s %12s\n" "suite" "program" "input" "I-cnt (M)");
  Buffer.add_string buf (String.make 70 '-' ^ "\n");
  List.iter
    (fun suite ->
      List.iter
        (fun (w : Workloads.Workload.t) ->
          Buffer.add_string buf
            (Printf.sprintf "%-20s %-12s %-22s %12d\n" (Workloads.Suite.name suite)
               w.Workloads.Workload.program w.Workloads.Workload.input
               w.Workloads.Workload.icount_millions))
        (Workloads.Registry.by_suite suite);
      Buffer.add_string buf "\n")
    Workloads.Suite.all;
  Buffer.add_string buf
    (Printf.sprintf "total: %d benchmarks in %d suites\n" Workloads.Registry.count
       (List.length Workloads.Suite.all));
  Buffer.contents buf

(* ---------------- Table II ---------------- *)

let render_table2 () =
  let buf = Buffer.create 4096 in
  for i = 0 to Analysis.Characteristics.count - 1 do
    Buffer.add_string buf (Format.asprintf "%a\n" Analysis.Characteristics.pp_row i)
  done;
  Buffer.contents buf

(* ---------------- Figure 1 ---------------- *)

type fig1 = { points : (float * float) array; correlation : float }

let fig1 (ctx : Context.t) =
  let mica_d = ctx.mica_space.Space.distances in
  let hpc_d = ctx.hpc_space.Space.distances in
  {
    points = Array.init (Array.length mica_d) (fun i -> (mica_d.(i), hpc_d.(i)));
    correlation = Classify.correlation ~hpc_distances:hpc_d ~mica_distances:mica_d;
  }

let render_fig1 f =
  (* text density scatter: x = mica distance, y = hpc distance *)
  let w = 60 and h = 20 in
  let xs = Array.map fst f.points and ys = Array.map snd f.points in
  let _, xmax = Stats.Descriptive.min_max xs in
  let _, ymax = Stats.Descriptive.min_max ys in
  let grid = Array.make_matrix h w 0 in
  Array.iter
    (fun (x, y) ->
      let cx = min (w - 1) (int_of_float (x /. xmax *. float_of_int (w - 1))) in
      let cy = min (h - 1) (int_of_float (y /. ymax *. float_of_int (h - 1))) in
      grid.(h - 1 - cy).(cx) <- grid.(h - 1 - cy).(cx) + 1)
    f.points;
  let shades = [| ' '; '.'; ':'; '+'; '*'; '#'; '@' |] in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "distance in HPC space (y, max %.2f) vs distance in MICA space (x, max %.2f)\n" ymax
       xmax);
  Array.iter
    (fun row ->
      Buffer.add_char buf '|';
      Array.iter
        (fun c ->
          let level = if c = 0 then 0 else min 6 (1 + int_of_float (log (float_of_int c))) in
          Buffer.add_char buf shades.(level))
        row;
      Buffer.add_string buf "\n")
    grid;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make w '-');
  Buffer.add_string buf
    (Printf.sprintf "\ncorrelation coefficient: %.3f   (paper: 0.46)\n" f.correlation);
  Buffer.contents buf

(* ---------------- Table III ---------------- *)

let table3 ?(frac = 0.2) (ctx : Context.t) =
  Classify.classify ~hpc_distances:ctx.hpc_space.Space.distances
    ~mica_distances:ctx.mica_space.Space.distances ~frac ()

let render_table3 counts =
  let f = Classify.fractions counts in
  let pct x = 100.0 *. x in
  String.concat "\n"
    [
      "                                  small dist (uarch-indep)  large dist (uarch-indep)";
      Printf.sprintf
        "large dist (hw perf counters)    false negative: %5.1f%%     true positive: %5.1f%%"
        (pct f.Classify.f_false_neg) (pct f.Classify.f_true_pos);
      Printf.sprintf
        "small dist (hw perf counters)    true negative:  %5.1f%%     false positive: %5.1f%%"
        (pct f.Classify.f_true_neg) (pct f.Classify.f_false_pos);
      Printf.sprintf "(paper: FN 0.2%%, TP 56.9%%, TN 1.8%%, FP 41.1%%; %d tuples)"
        counts.Classify.total;
      "";
    ]

(* ---------------- Figures 2 and 3 ---------------- *)

let default_a = "SPEC2000/bzip2/graphic"
let default_b = "BioInfoMark/blast/protein"

let fig2 ?(a = default_a) ?(b = default_b) (ctx : Context.t) =
  let ds = Case_study.hpc_with_mix ~hpc:ctx.hpc ~mica:ctx.mica in
  Case_study.compare_in ds ~a ~b

let fig3 ?(a = default_a) ?(b = default_b) (ctx : Context.t) =
  Case_study.compare_in ctx.mica ~a ~b

(* ---------------- Feature selection ---------------- *)

let run_ce (ctx : Context.t) =
  Select.Correlation_elimination.run
    ~pool:(Mica_util.Pool.default ())
    ~data:ctx.mica.Dataset.data ctx.fitness

let run_ga ?config ?(seed = 0x6A5EEDL) (ctx : Context.t) =
  let rng = Mica_util.Rng.create ~seed in
  Select.Genetic.run ?config ~pool:(Mica_util.Pool.default ()) ~rng ctx.fitness

(* ---------------- Figure 4 ---------------- *)

type roc_entry = { label : string; n_features : int; curve : Stats.Roc.curve }

let roc_for (ctx : Context.t) subset =
  let test_distances = Select.Fitness.distances_for ctx.fitness subset in
  fun frac ->
    Stats.Roc.of_spaces ~ref_distances:ctx.hpc_space.Space.distances ~test_distances ~frac

let fig4 ?(frac = 0.2) (ctx : Context.t) ~ga ~ce =
  let all = Array.init Analysis.Characteristics.count Fun.id in
  let entry label subset =
    { label; n_features = Array.length subset; curve = roc_for ctx subset frac }
  in
  let ce_subset k =
    try Some (Select.Correlation_elimination.subset_of_size ce k) with Not_found -> None
  in
  List.concat
    [
      [ entry "all 47 characteristics" all ];
      (match ce_subset 17 with Some s -> [ entry "corr. elimination (17)" s ] | None -> []);
      (match ce_subset 12 with Some s -> [ entry "corr. elimination (12)" s ] | None -> []);
      (match ce_subset 7 with Some s -> [ entry "corr. elimination (7)" s ] | None -> []);
      [ entry
          (Printf.sprintf "genetic algorithm (%d)" (Array.length ga.Select.Genetic.selected))
          ga.Select.Genetic.selected;
      ];
    ]

let render_fig4 entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ROC analysis (reference: HPC space at 20% threshold)\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s features=%2d  AUC=%.3f\n" e.label e.n_features
           e.curve.Stats.Roc.auc))
    entries;
  Buffer.add_string buf "  (paper AUCs: all=0.72, GA=0.69, CE17=0.67, CE12/7=0.64)\n";
  Buffer.contents buf

(* ---------------- Figure 5 ---------------- *)

type fig5 = { ce_points : (int * float) array; ga_point : int * float }

let fig5 (ctx : Context.t) ~ga =
  let ce = run_ce ctx in
  let ce_points =
    Array.of_list
      (List.map
         (fun (s : Select.Correlation_elimination.step) ->
           (Array.length s.Select.Correlation_elimination.remaining,
            s.Select.Correlation_elimination.rho))
         ce)
  in
  {
    ce_points;
    ga_point = (Array.length ga.Select.Genetic.selected, ga.Select.Genetic.rho);
  }

let render_fig5 f =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "correlation of reduced-space distances with full-space distances\n";
  Buffer.add_string buf "  correlation elimination sweep (retained -> rho):\n";
  Array.iter
    (fun (k, rho) -> Buffer.add_string buf (Printf.sprintf "    %2d  %.3f\n" k rho))
    f.ce_points;
  let k, rho = f.ga_point in
  Buffer.add_string buf (Printf.sprintf "  genetic algorithm: %d retained, rho = %.3f\n" k rho);
  Buffer.add_string buf "  (paper: GA rho 0.876 with 8 retained; CE rho 0.823 with 17)\n";
  Buffer.contents buf

(* ---------------- Table IV ---------------- *)

let render_table4 (ga : Select.Genetic.result) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "characteristics selected by the genetic algorithm (%d of %d):\n"
       (Array.length ga.Select.Genetic.selected)
       Analysis.Characteristics.count);
  Array.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "  %d. %s\n" (i + 1) Analysis.Characteristics.names.(c)))
    ga.Select.Genetic.selected;
  Buffer.add_string buf
    (Printf.sprintf "fitness %.3f, rho %.3f, %d generations, %d evaluations\n"
       ga.Select.Genetic.fitness ga.Select.Genetic.rho ga.Select.Genetic.generations_run
       ga.Select.Genetic.evaluations);
  Buffer.contents buf

(* ---------------- Figure 6 ---------------- *)

type fig6 = { clustering : Clustering.t; axes : string array; plots : Kiviat.plot list }

let fig6 ?(k_max = 70) (ctx : Context.t) ~selected =
  let reduced = Dataset.select_features ctx.mica selected in
  let clustering = Clustering.cluster ~k_max ~pool:(Mica_util.Pool.default ()) reduced in
  let unit = Stats.Normalize.unit_range reduced.Dataset.data in
  let plots =
    List.mapi
      (fun i name ->
        {
          Kiviat.p_label = name;
          p_values = unit.(i);
          p_cluster = clustering.Clustering.assignments.(i);
        })
      (Array.to_list reduced.Dataset.names)
  in
  (* order clusters by size so the display matches the paper's layout *)
  let order = Clustering.sorted_clusters clustering in
  let rank = Hashtbl.create 32 in
  List.iteri (fun r (c, _) -> Hashtbl.replace rank c r) order;
  let plots =
    List.sort
      (fun a b ->
        compare
          (Hashtbl.find rank a.Kiviat.p_cluster, a.Kiviat.p_label)
          (Hashtbl.find rank b.Kiviat.p_cluster, b.Kiviat.p_label))
      plots
  in
  (* renumber clusters in display order *)
  let plots =
    List.map (fun p -> { p with Kiviat.p_cluster = Hashtbl.find rank p.Kiviat.p_cluster }) plots
  in
  { clustering; axes = reduced.Dataset.features; plots }

let render_fig6 f =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf "k-means with BIC-selected K = %d (paper: 15 clusters)\n"
       f.clustering.Clustering.k);
  Buffer.add_string buf (Printf.sprintf "axes: %s\n\n" (String.concat ", " (Array.to_list f.axes)));
  let current = ref (-1) in
  List.iter
    (fun (p : Kiviat.plot) ->
      if p.Kiviat.p_cluster <> !current then begin
        current := p.Kiviat.p_cluster;
        Buffer.add_string buf (Printf.sprintf "cluster %d:\n" (p.Kiviat.p_cluster + 1))
      end;
      Buffer.add_string buf
        (Printf.sprintf "  %s  %s\n" (Kiviat.text_compact ~values:p.Kiviat.p_values)
           p.Kiviat.p_label))
    f.plots;
  Buffer.contents buf

(* ---------------- Extended characteristic set ---------------- *)

let extended_dataset (ctx : Context.t) =
  let config = ctx.Context.config in
  let cache_path =
    Option.map
      (fun dir ->
        Filename.concat dir
          (Printf.sprintf "extended-%s-%d.csv" Pipeline.model_version config.Pipeline.icount))
      config.Pipeline.cache_dir
  in
  let cache =
    match cache_path with
    | Some p when Sys.file_exists p -> (
      try
        let ds = Dataset.of_csv p in
        let tbl = Hashtbl.create (Dataset.rows ds) in
        Array.iteri (fun i n -> Hashtbl.replace tbl n ds.Dataset.data.(i)) ds.Dataset.names;
        tbl
      with Failure _ -> Hashtbl.create 16)
    | Some _ | None -> Hashtbl.create 16
  in
  let dirty = ref false in
  let rows =
    List.map
      (fun (w : Workloads.Workload.t) ->
        let id = Workloads.Workload.id w in
        match Hashtbl.find_opt cache id with
        | Some row when Array.length row = Analysis.Extended.count -> (id, row)
        | _ ->
          if config.Pipeline.progress then
            Logs.app (fun f -> f "extended characterization of %s" id);
          let row =
            Analysis.Extended.analyze ~ppm_order:config.Pipeline.ppm_order
              w.Workloads.Workload.model ~icount:config.Pipeline.icount
          in
          Hashtbl.replace cache id row;
          dirty := true;
          (id, row))
      ctx.Context.workloads
  in
  (if !dirty then
     match cache_path with
     | Some p ->
       let entries = Hashtbl.fold (fun n r acc -> (n, r) :: acc) cache [] in
       let entries = List.sort compare entries in
       let ds =
         Dataset.create
           ~names:(Array.of_list (List.map fst entries))
           ~features:Analysis.Extended.short_names
           (Array.of_list (List.map snd entries))
       in
       (try Dataset.to_csv ds p with Sys_error _ -> ())
     | None -> ());
  Dataset.create
    ~names:(Array.of_list (List.map fst rows))
    ~features:Analysis.Extended.short_names
    (Array.of_list (List.map snd rows))

type extended_result = {
  ext_ga : Select.Genetic.result;
  ext_selected_names : string array;
  ext_extension_picked : int;
}

let extended_selection ?config ?(seed = 0x6A5EEDL) (ctx : Context.t) =
  let ds = extended_dataset ctx in
  let normalized = Stats.Normalize.zscore ds.Dataset.data in
  let fitness = Select.Fitness.create normalized in
  let rng = Mica_util.Rng.create ~seed in
  let ga = Select.Genetic.run ?config ~rng fitness in
  let selected = ga.Select.Genetic.selected in
  {
    ext_ga = ga;
    ext_selected_names = Array.map (fun c -> Analysis.Extended.short_names.(c)) selected;
    ext_extension_picked =
      Array.fold_left
        (fun acc c -> if Analysis.Extended.is_extension c then acc + 1 else acc)
        0 selected;
  }

let render_extended r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "GA over the extended %d-characteristic space: %d selected (rho %.3f, fitness %.3f)\n"
       Analysis.Extended.count
       (Array.length r.ext_ga.Select.Genetic.selected)
       r.ext_ga.Select.Genetic.rho r.ext_ga.Select.Genetic.fitness);
  Array.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf "  %d. %s%s\n" (i + 1)
           Analysis.Extended.names.(c)
           (if Analysis.Extended.is_extension c then "   [extension]" else "")))
    r.ext_ga.Select.Genetic.selected;
  Buffer.add_string buf
    (Printf.sprintf
       "%d of the selected characteristics come from the extension set:\n\
        the locality/branch measures carry information the original 47 do not.\n"
       r.ext_extension_picked);
  Buffer.contents buf

(* ---------------- Cost model ---------------- *)

type cost = { full_seconds : float; reduced_seconds : float; speedup : float; sample : int }

(* Build only the analyzer sinks the selected characteristics require: the
   mechanism behind the paper's "8 characteristics are ~3x cheaper to
   measure than 47".  Within the expensive families, only the selected ILP
   window sizes and PPM predictor variants are simulated. *)
let sinks_for_subset selected =
  let needed = Hashtbl.create 8 in
  Array.iter
    (fun c -> Hashtbl.replace needed Analysis.Characteristics.categories.(c) ())
    selected;
  let sel c = Array.exists (fun i -> i = c) selected in
  let sinks = ref [] in
  let add cat make = if Hashtbl.mem needed cat then sinks := make () :: !sinks in
  add Analysis.Characteristics.Instruction_mix (fun () ->
      Analysis.Mix.sink (Analysis.Mix.create ()));
  add Analysis.Characteristics.Ilp (fun () ->
      (* characteristics 7-10 (indices 6-9) are the four window sizes *)
      let windows =
        Array.of_list
          (List.filter_map
             (fun (idx, w) -> if sel idx then Some w else None)
             [ (6, 32); (7, 64); (8, 128); (9, 256) ])
      in
      Analysis.Ilp.sink (Analysis.Ilp.create ~windows ()));
  add Analysis.Characteristics.Register_traffic (fun () ->
      Analysis.Regtraffic.sink (Analysis.Regtraffic.create ()));
  add Analysis.Characteristics.Working_set_size (fun () ->
      Analysis.Working_set.sink (Analysis.Working_set.create ()));
  add Analysis.Characteristics.Data_stream_strides (fun () ->
      Analysis.Strides.sink (Analysis.Strides.create ()));
  add Analysis.Characteristics.Branch_predictability (fun () ->
      (* characteristics 44-47 (indices 43-46) are GAg, PAg, GAs, PAs *)
      let variants =
        List.filter_map
          (fun (idx, v) -> if sel idx then Some v else None)
          [ (43, Analysis.Ppm.GAg); (44, Analysis.Ppm.PAg); (45, Analysis.Ppm.GAs); (46, Analysis.Ppm.PAs) ]
      in
      Analysis.Ppm.sink (Analysis.Ppm.create ~variants ()));
  !sinks

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let cost_model ?(sample = 8) (ctx : Context.t) ~selected =
  let workloads =
    List.filteri (fun i _ -> i < sample) ctx.workloads
  in
  let run sinks_of =
    List.iter
      (fun (w : Workloads.Workload.t) ->
        let sink = Mica_trace.Sink.fanout (sinks_of ()) in
        ignore
          (Mica_trace.Generator.run w.Workloads.Workload.model ~icount:ctx.config.Pipeline.icount
             ~sink
            : int))
      workloads
  in
  let all = Array.init Analysis.Characteristics.count Fun.id in
  let full_seconds = time (fun () -> run (fun () -> sinks_for_subset all)) in
  let reduced_seconds = time (fun () -> run (fun () -> sinks_for_subset selected)) in
  {
    full_seconds;
    reduced_seconds;
    speedup = (if reduced_seconds > 0.0 then full_seconds /. reduced_seconds else 0.0);
    sample = List.length workloads;
  }

let render_cost c =
  Printf.sprintf
    "characterization cost over %d workloads: all 47 chars %.2fs, selected subset %.2fs -> \
     %.2fx speedup (paper: ~3x, 110 vs 37 machine-days)\n"
    c.sample c.full_seconds c.reduced_seconds c.speedup
