type t = { name : string; on_chunk : Chunk.t -> unit }

let make ~name on_chunk = { name; on_chunk }

let of_instr_sink ~name on_instr =
  {
    name;
    on_chunk =
      (fun c ->
        for i = 0 to c.Chunk.len - 1 do
          on_instr (Chunk.get c i)
        done);
  }

let fanout sinks =
  let arr = Array.of_list sinks in
  let n = Array.length arr in
  let on_chunk c =
    for i = 0 to n - 1 do
      arr.(i).on_chunk c
    done
  in
  { name = "fanout"; on_chunk }

let counter () =
  let n = ref 0 in
  (make ~name:"counter" (fun c -> n := !n + c.Chunk.len), fun () -> !n)

(* The sampled stream is restaged into a private chunk so the downstream
   sink still sees the chunk protocol; the modulus carries across chunk
   boundaries, so sampling is a property of the instruction stream, not of
   its chunking. *)
let sample ~every sink =
  if every <= 0 then invalid_arg "Sink.sample: every must be positive";
  if every = 1 then sink (* identity, not a renamed wrapper *)
  else begin
    let k = ref 0 in
    let stage = Chunk.create () in
    make ~name:(sink.name ^ "/sampled") (fun c ->
        for i = 0 to c.Chunk.len - 1 do
          if !k = 0 then begin
            Chunk.append c i stage;
            if Chunk.is_full stage then begin
              sink.on_chunk stage;
              Chunk.clear stage
            end
          end;
          k := (!k + 1) mod every
        done;
        if Chunk.length stage > 0 then begin
          sink.on_chunk stage;
          Chunk.clear stage
        end)
  end

let collect ~limit () =
  if limit < 0 then invalid_arg "Sink.collect: limit must be non-negative";
  let acc = ref [] in
  let n = ref 0 in
  let sink =
    make ~name:"collect" (fun c ->
        let take = min (limit - !n) c.Chunk.len in
        for i = 0 to take - 1 do
          acc := Chunk.get c i :: !acc
        done;
        n := !n + take)
  in
  (sink, fun () -> List.rev !acc)

let buffered ?capacity sink =
  let c = Chunk.create ?capacity () in
  let push ins =
    Chunk.push c ins;
    if Chunk.is_full c then begin
      sink.on_chunk c;
      Chunk.clear c
    end
  in
  let flush () =
    if Chunk.length c > 0 then begin
      sink.on_chunk c;
      Chunk.clear c
    end
  in
  (push, flush)

let feed_list ?capacity sink instrs =
  let push, flush = buffered ?capacity sink in
  List.iter push instrs;
  flush ()
