(** Trace consumers.

    A sink receives every dynamic instruction of a trace exactly once, in
    program order, delivered in struct-of-arrays {!Chunk.t} batches.  This
    is the moral equivalent of an ATOM analysis routine: the generator
    performs a single pass and fans the stream out to all registered sinks,
    so measuring one more characteristic never costs a second trace.

    Chunk boundaries carry no meaning — consumers must treat the stream as
    the concatenation of all chunks, in order.  A chunk is only valid for
    the duration of the [on_chunk] call: the generator reuses the storage
    for the next batch, so sinks that need to retain elements must copy
    them out ({!Chunk.get}, {!Chunk.append}). *)

type t = {
  name : string;  (** diagnostic label *)
  on_chunk : Chunk.t -> unit;
      (** called with successive batches; elements [0 .. len - 1] of each
          chunk are consecutive dynamic instructions *)
}

val make : name:string -> (Chunk.t -> unit) -> t

val of_instr_sink : name:string -> (Mica_isa.Instr.t -> unit) -> t
(** Compatibility shim: wraps a per-instruction consumer as a chunk sink
    that boxes each element via {!Chunk.get}.  Off the hot path — used by
    trace dumps, reference oracles and invariant checkers, where clarity
    beats allocation. *)

val fanout : t list -> t
(** [fanout sinks] delivers each chunk to every sink in order. *)

val counter : unit -> t * (unit -> int)
(** A sink that counts instructions, and its reader. *)

val sample : every:int -> t -> t
(** [sample ~every sink] forwards every [every]-th instruction only;
    used by tests and by cheap preview passes.  Selection is positional
    over the whole stream, independent of chunking; survivors are restaged
    into fresh chunks for the downstream sink.  [sample ~every:1] is the
    identity.  Raises [Invalid_argument] unless [every > 0]. *)

val collect : limit:int -> unit -> t * (unit -> Mica_isa.Instr.t list)
(** A sink retaining the first [limit] instructions (program order), and
    its reader; used by tests.  [collect ~limit:0] absorbs the stream and
    returns [[]].  Raises [Invalid_argument] if [limit] is negative. *)

val buffered : ?capacity:int -> t -> (Mica_isa.Instr.t -> unit) * (unit -> unit)
(** [buffered sink] is [(push, flush)]: a per-instruction front end that
    accumulates pushes into a private chunk and delivers it to [sink]
    whenever full.  [flush] delivers any partial chunk; call it exactly
    once, after the last [push].  Used by trace replay and tests. *)

val feed_list : ?capacity:int -> t -> Mica_isa.Instr.t list -> unit
(** [feed_list sink instrs] streams a boxed instruction list through
    [sink] in chunks (including the partial last one).  [?capacity] sets
    the staging chunk size — tests use small capacities to exercise
    chunk-boundary behaviour. *)
