(** Struct-of-arrays trace chunks: the unit of transport between the
    generator and every trace consumer.

    A chunk holds up to [capacity] dynamic instructions decomposed into
    parallel arrays (one per {!Mica_isa.Instr.t} field), so the hot path
    from generator to analyzers moves plain integers through preallocated
    storage — no per-instruction record allocation, no per-instruction
    closure dispatch.  Consumers read the arrays directly in a tight loop
    over [0 .. len - 1]; the elements of a chunk are in program order, and
    successive chunks partition the trace (chunk boundaries carry no
    meaning — a basic block may straddle two chunks).

    Opcodes are stored as {!Mica_isa.Opcode.to_int} codes and branch
    outcomes as one byte per element ['\000'] / ['\001'].  Register and
    address fields use the same conventions as {!Mica_isa.Instr.t}
    ({!Mica_isa.Reg.none} for absent operands, [0] for absent
    address/target). *)

type t = {
  capacity : int;  (** allocated element count; never changes *)
  mutable len : int;  (** live elements; indices [0 .. len - 1] are valid *)
  pc : int array;
  op : int array;  (** {!Mica_isa.Opcode.to_int} codes *)
  src1 : int array;
  src2 : int array;
  dst : int array;
  addr : int array;
  target : int array;
  taken : Bytes.t;  (** ['\000'] not taken, anything else taken *)
}

val default_capacity : int
(** 4096: large enough to amortize dispatch, small enough to stay
    cache-resident across the analyzer fan-out. *)

val create : ?capacity:int -> unit -> t
(** An empty chunk.  Raises [Invalid_argument] unless [capacity > 0]. *)

val length : t -> int
val is_full : t -> bool

val clear : t -> unit
(** Resets [len] to 0; storage is reused, not reallocated. *)

val opcode : t -> int -> Mica_isa.Opcode.t
(** [opcode c i] decodes element [i]'s opcode.  Unchecked beyond the
    {!Mica_isa.Opcode.of_int} range test; callers loop over [0 .. len-1]. *)

val taken : t -> int -> bool
(** [taken c i] decodes element [i]'s branch outcome. *)

val get : t -> int -> Mica_isa.Instr.t
(** [get c i] reconstructs element [i] as a boxed instruction record — the
    compatibility path for consumers that still want {!Mica_isa.Instr.t}.
    Allocates; not for hot loops.  Raises [Invalid_argument] if [i] is
    outside [0 .. len - 1]. *)

val push : t -> Mica_isa.Instr.t -> unit
(** [push c ins] appends a boxed instruction.  Raises [Invalid_argument]
    when full; check {!is_full} first. *)

val append : t -> int -> t -> unit
(** [append src i dst] copies element [i] of [src] onto the end of [dst]
    without boxing.  Raises [Invalid_argument] on a bad index or a full
    destination. *)

val iter : (Mica_isa.Instr.t -> unit) -> t -> unit
(** Boxed iteration in element order; compatibility path, allocates one
    record per element. *)

val to_list : t -> Mica_isa.Instr.t list
(** Boxed snapshot of the live elements, in order. *)
