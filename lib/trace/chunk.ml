module Opcode = Mica_isa.Opcode
module Instr = Mica_isa.Instr

type t = {
  capacity : int;
  mutable len : int;
  pc : int array;
  op : int array;
  src1 : int array;
  src2 : int array;
  dst : int array;
  addr : int array;
  target : int array;
  taken : Bytes.t;
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Chunk.create: capacity must be positive";
  {
    capacity;
    len = 0;
    pc = Array.make capacity 0;
    op = Array.make capacity 0;
    src1 = Array.make capacity 0;
    src2 = Array.make capacity 0;
    dst = Array.make capacity 0;
    addr = Array.make capacity 0;
    target = Array.make capacity 0;
    taken = Bytes.make capacity '\000';
  }

let length c = c.len
let is_full c = c.len = c.capacity
let clear c = c.len <- 0

let opcode c i = Opcode.of_int c.op.(i)
let taken c i = Bytes.get c.taken i <> '\000'

let get c i : Instr.t =
  if i < 0 || i >= c.len then invalid_arg "Chunk.get: index out of bounds";
  {
    pc = Array.unsafe_get c.pc i;
    op = Opcode.of_int (Array.unsafe_get c.op i);
    src1 = Array.unsafe_get c.src1 i;
    src2 = Array.unsafe_get c.src2 i;
    dst = Array.unsafe_get c.dst i;
    addr = Array.unsafe_get c.addr i;
    taken = Bytes.unsafe_get c.taken i <> '\000';
    target = Array.unsafe_get c.target i;
  }

let push c (ins : Instr.t) =
  if c.len >= c.capacity then invalid_arg "Chunk.push: chunk is full";
  let i = c.len in
  Array.unsafe_set c.pc i ins.pc;
  Array.unsafe_set c.op i (Opcode.to_int ins.op);
  Array.unsafe_set c.src1 i ins.src1;
  Array.unsafe_set c.src2 i ins.src2;
  Array.unsafe_set c.dst i ins.dst;
  Array.unsafe_set c.addr i ins.addr;
  Array.unsafe_set c.target i ins.target;
  Bytes.unsafe_set c.taken i (if ins.taken then '\001' else '\000');
  c.len <- i + 1

let append src i dst =
  if i < 0 || i >= src.len then invalid_arg "Chunk.append: index out of bounds";
  if dst.len >= dst.capacity then invalid_arg "Chunk.append: destination is full";
  let j = dst.len in
  Array.unsafe_set dst.pc j (Array.unsafe_get src.pc i);
  Array.unsafe_set dst.op j (Array.unsafe_get src.op i);
  Array.unsafe_set dst.src1 j (Array.unsafe_get src.src1 i);
  Array.unsafe_set dst.src2 j (Array.unsafe_get src.src2 i);
  Array.unsafe_set dst.dst j (Array.unsafe_get src.dst i);
  Array.unsafe_set dst.addr j (Array.unsafe_get src.addr i);
  Array.unsafe_set dst.target j (Array.unsafe_get src.target i);
  Bytes.unsafe_set dst.taken j (Bytes.unsafe_get src.taken i);
  dst.len <- j + 1

let iter f c =
  for i = 0 to c.len - 1 do
    f (get c i)
  done

let to_list c =
  let acc = ref [] in
  for i = c.len - 1 downto 0 do
    acc := get c i :: !acc
  done;
  !acc
