module Instr = Mica_isa.Instr
module Opcode = Mica_isa.Opcode

(* ---------------- text format ---------------- *)

let opcode_of_string s =
  match List.find_opt (fun op -> Opcode.to_string op = s) Opcode.all with
  | Some op -> op
  | None -> failwith (Printf.sprintf "unknown opcode %S" s)

let instr_to_line (i : Instr.t) =
  Printf.sprintf "%x %s %d %d %d %x %c %x" i.pc (Opcode.to_string i.op) i.src1 i.src2 i.dst
    i.addr
    (if i.taken then 'T' else 'N')
    i.target

let instr_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ pc; op; src1; src2; dst; addr; taken; target ] -> (
    try
      Instr.make
        ~pc:(int_of_string ("0x" ^ pc))
        ~op:(opcode_of_string op) ~src1:(int_of_string src1) ~src2:(int_of_string src2)
        ~dst:(int_of_string dst)
        ~addr:(int_of_string ("0x" ^ addr))
        ~taken:(match taken with "T" -> true | "N" -> false | _ -> failwith "bad taken flag")
        ~target:(int_of_string ("0x" ^ target))
        ()
    with Failure msg -> failwith (Printf.sprintf "malformed trace line %S: %s" line msg))
  | _ -> failwith (Printf.sprintf "malformed trace line %S" line)

let text_sink oc =
  Sink.of_instr_sink ~name:"trace-text-writer" (fun i ->
      output_string oc (instr_to_line i);
      output_char oc '\n')

let replay_text ~path ~sink =
  In_channel.with_open_text path (fun ic ->
      let push, flush = Sink.buffered sink in
      let count = ref 0 in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then begin
             (try push (instr_of_line line)
              with Failure msg -> failwith (Printf.sprintf "line %d: %s" !lineno msg));
             incr count
           end
         done
       with End_of_file -> ());
      flush ();
      !count)

(* ---------------- binary format ---------------- *)

let magic = "MICATRC1"
let record_bytes = 28

(* record layout (little endian):
   0  pc      int64
   8  addr    int64
   16 target  int64
   24 op      uint8 (index into Opcode.all)
   25 src1+1  uint8    (+1 so Reg.none = -1 encodes as 0)
   26 src2+1  uint8
   27 dst+1 shifted with taken in the top bit *)

let opcode_index =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i op -> Hashtbl.replace tbl op i) Opcode.all;
  tbl

let opcode_array = Array.of_list Opcode.all

let encode buf (i : Instr.t) =
  Bytes.set_int64_le buf 0 (Int64.of_int i.pc);
  Bytes.set_int64_le buf 8 (Int64.of_int i.addr);
  Bytes.set_int64_le buf 16 (Int64.of_int i.target);
  Bytes.set_uint8 buf 24 (Hashtbl.find opcode_index i.op);
  Bytes.set_uint8 buf 25 (i.src1 + 1);
  Bytes.set_uint8 buf 26 (i.src2 + 1);
  Bytes.set_uint8 buf 27 ((i.dst + 1) lor if i.taken then 0x80 else 0)

let decode buf =
  let pc = Int64.to_int (Bytes.get_int64_le buf 0) in
  let addr = Int64.to_int (Bytes.get_int64_le buf 8) in
  let target = Int64.to_int (Bytes.get_int64_le buf 16) in
  let op_idx = Bytes.get_uint8 buf 24 in
  if op_idx >= Array.length opcode_array then failwith "corrupt trace: bad opcode";
  let src1 = Bytes.get_uint8 buf 25 - 1 in
  let src2 = Bytes.get_uint8 buf 26 - 1 in
  let b27 = Bytes.get_uint8 buf 27 in
  let taken = b27 land 0x80 <> 0 in
  let dst = (b27 land 0x7F) - 1 in
  Instr.make ~pc ~op:opcode_array.(op_idx) ~src1 ~src2 ~dst ~addr ~taken ~target ()

let binary_sink oc =
  output_string oc magic;
  let buf = Bytes.create record_bytes in
  Sink.of_instr_sink ~name:"trace-binary-writer" (fun i ->
      encode buf i;
      output_bytes oc buf)

let replay_binary ~path ~sink =
  In_channel.with_open_bin path (fun ic ->
      let total = Int64.to_int (In_channel.length ic) in
      let header_len = String.length magic in
      if total < header_len then failwith "not a MICA binary trace (too short)";
      let header = really_input_string ic header_len in
      if header <> magic then failwith "not a MICA binary trace (bad magic)";
      let payload = total - header_len in
      if payload mod record_bytes <> 0 then failwith "corrupt trace: truncated record";
      let records = payload / record_bytes in
      let buf = Bytes.create record_bytes in
      let push, flush = Sink.buffered sink in
      for _ = 1 to records do
        (match In_channel.really_input ic buf 0 record_bytes with
        | Some () -> push (decode buf)
        | None -> failwith "corrupt trace: unexpected end of file")
      done;
      flush ();
      records)

let with_out_channel path ~binary f =
  let oc = if binary then open_out_bin path else open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_text ~path program ~icount =
  with_out_channel path ~binary:false (fun oc -> Generator.run program ~icount ~sink:(text_sink oc))

let write_binary ~path program ~icount =
  with_out_channel path ~binary:true (fun oc ->
      Generator.run program ~icount ~sink:(binary_sink oc))
