(** The trace generator: executes a {!Program} model, streaming dynamic
    instructions to a {!Sink}.

    Generation is fully deterministic: the program's seed fixes both the
    static structure (kernel instantiation) and every dynamic decision
    (kernel interleaving, random addresses, random branch outcomes).  Two
    runs of the same program at the same [icount] produce identical
    traces.

    Delivery is batched: the generator fills one preallocated
    struct-of-arrays {!Chunk.t} in place and hands it to the sink whenever
    it fills (and once more for the partial final chunk), so the hot path
    performs no per-instruction allocation.  Chunking is an artifact of
    transport — the instruction stream itself is identical to a
    per-instruction delivery of the same program. *)

val run : Program.t -> icount:int -> sink:Sink.t -> int
(** [run program ~icount ~sink] generates at most [icount] dynamic
    instructions and returns the number actually emitted (always [icount]
    for valid programs, since programs loop forever).  Raises
    [Invalid_argument] if the program fails {!Program.validate}. *)

val preview : Program.t -> n:int -> Mica_isa.Instr.t list
(** First [n] instructions of the trace; for debugging and tests. *)
