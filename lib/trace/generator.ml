module Rng = Mica_util.Rng
module Opcode = Mica_isa.Opcode
module Reg = Mica_isa.Reg
module Instr = Mica_isa.Instr

exception Done

module Obs = Mica_obs.Obs

let m_chunks = Obs.counter "trace.chunks"
let m_instrs = Obs.counter "trace.instrs"

type state = {
  rng : Rng.t;
  chunk : Chunk.t;  (* staging buffer, refilled in place between deliveries *)
  deliver : Chunk.t -> unit;
  mutable emitted : int;
  limit : int;
  mutable ghist : int;  (* global conditional-branch outcome history *)
  mutable next_pc : int;  (* fall-through/target of the last emitted instruction *)
}

let op_branch = Opcode.to_int Opcode.Branch
let op_jump = Opcode.to_int Opcode.Jump
let op_call = Opcode.to_int Opcode.Call
let op_return = Opcode.to_int Opcode.Return

let flush st =
  if st.chunk.Chunk.len > 0 then begin
    (* Fault-injection point: a generator hiccup at chunk granularity.
       [emitted] at flush time is a deterministic per-chunk key.  With no
       plan installed this is one atomic load per chunk, nothing per
       instruction. *)
    Mica_util.Fault.check Mica_util.Fault.Trace_gen ~key:st.emitted;
    let len = st.chunk.Chunk.len in
    st.deliver st.chunk;
    Chunk.clear st.chunk;
    Obs.incr m_chunks;
    Obs.add m_instrs (float_of_int len)
  end

(* The one write path to the chunk.  [len < capacity] holds on entry because
   every exit below flushes a full chunk, so the unsafe stores are in
   bounds.  [taken] is only ever true for control opcodes (the generator
   never sets it otherwise), which makes [if taken then target else pc + 4]
   agree with [Instr.next_pc].  A chunk filled exactly at the instruction
   limit is delivered by the capacity flush and leaves [len = 0], so the
   flush before [Done] and the final flush in [run] never redeliver it. *)
let emit st ~pc ~op ~src1 ~src2 ~dst ~addr ~taken ~target =
  let c = st.chunk in
  let i = c.Chunk.len in
  Array.unsafe_set c.Chunk.pc i pc;
  Array.unsafe_set c.Chunk.op i op;
  Array.unsafe_set c.Chunk.src1 i src1;
  Array.unsafe_set c.Chunk.src2 i src2;
  Array.unsafe_set c.Chunk.dst i dst;
  Array.unsafe_set c.Chunk.addr i addr;
  Array.unsafe_set c.Chunk.target i target;
  Bytes.unsafe_set c.Chunk.taken i (if taken then '\001' else '\000');
  c.Chunk.len <- i + 1;
  st.emitted <- st.emitted + 1;
  st.next_pc <- (if taken then target else pc + 4);
  if i + 1 = c.Chunk.capacity then flush st;
  if st.emitted >= st.limit then begin
    flush st;
    raise Done
  end

(* 64-bit mixer for pointer-chase address sequences: deterministic and
   well-scrambled, so chases look like random dependent walks. *)
let mix_int x =
  let x = Int64.of_int x in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  let x = Int64.logxor x (Int64.shift_right_logical x 31) in
  Int64.to_int (Int64.shift_right_logical x 2)

let next_addr st (m : Kernel.mem_state) =
  match m.m_pattern with
  | Kernel.Fixed -> m.m_base + m.m_cursor
  | Kernel.Seq { stride } | Kernel.Strided { stride } ->
    let a = m.m_base + m.m_cursor in
    let next = m.m_cursor + stride in
    m.m_cursor <- (if next >= m.m_span || next < 0 then (next mod m.m_span + m.m_span) mod m.m_span else next);
    a
  | Kernel.Random ->
    (* Random accesses are zipf-like in real programs: most hit a hot
       window ([m_aux] marks its start), the tail roams the whole region. *)
    if Rng.bernoulli st.rng ~p:0.9 then
      let hot_span = max 64 (m.m_span / 64) in
      m.m_base + ((m.m_aux + (Rng.int st.rng (hot_span / 8) * 8)) mod m.m_span)
    else m.m_base + (Rng.int st.rng (max 1 (m.m_span / 8)) * 8)
  | Kernel.Chase ->
    (* Dependent walks have temporal locality: the chase scrambles inside a
       window that occasionally relocates, so the full region is covered
       over time without thrashing the TLB on every access. *)
    let window = max 4096 (min (m.m_span / 8) 131072) in
    if Rng.bernoulli st.rng ~p:0.03 then
      m.m_aux <- Rng.int st.rng (max 1 (m.m_span / 8)) * 8 mod m.m_span;
    let a = m.m_base + ((m.m_aux + m.m_cursor) mod m.m_span) in
    m.m_cursor <- mix_int m.m_cursor mod window land lnot 7;
    a

let branch_outcome st (b : Kernel.br_state) =
  let outcome =
    match b.b_kind with
    | Kernel.Loop_like { period } -> b.b_execs mod period <> period - 1
    | Kernel.Periodic { period; taken_in_period } -> b.b_execs mod period < taken_in_period
    | Kernel.Biased { taken_prob } -> Rng.bernoulli st.rng ~p:taken_prob
    | Kernel.History { depth } ->
      (* parity of the last [depth] global outcomes *)
      let mask = (1 lsl depth) - 1 in
      let rec parity x acc = if x = 0 then acc else parity (x lsr 1) (acc lxor (x land 1)) in
      parity (st.ghist land mask) 0 = 1
  in
  b.b_execs <- b.b_execs + 1;
  st.ghist <- ((st.ghist lsl 1) lor Bool.to_int outcome) land 0xFFFF;
  outcome

let emit_slot st (slot : Kernel.slot) =
  let addr = match slot.s_mem with Some m -> next_addr st m | None -> 0 in
  emit st ~pc:slot.s_pc ~op:(Opcode.to_int slot.s_op) ~src1:slot.s_src1 ~src2:slot.s_src2
    ~dst:slot.s_dst ~addr ~taken:false ~target:0

(* Execute one loop iteration of the body; returns unit.  Taken body
   branches skip slots; a skip past the end jumps to the loop back-edge. *)
let run_iteration st (inst : Kernel.instance) =
  let body = inst.i_body in
  let n = Array.length body in
  let i = ref 0 in
  while !i < n do
    let slot = body.(!i) in
    match slot.s_br with
    | None ->
      emit_slot st slot;
      incr i
    | Some br ->
      let taken = branch_outcome st br in
      let skip_target = !i + 1 + br.b_skip in
      let target = if skip_target >= n then inst.i_loop_pc else body.(skip_target).s_pc in
      emit st ~pc:slot.s_pc ~op:op_branch ~src1:slot.s_src1 ~src2:slot.s_src2 ~dst:Reg.none
        ~addr:0 ~taken ~target;
      i := (if taken then skip_target else !i + 1)
  done

let run_helper st (inst : Kernel.instance) =
  if Array.length inst.i_helpers > 0 then begin
    let idx = Rng.pick_weighted st.rng inst.i_helper_weights in
    let helper = inst.i_helpers.(idx) in
    let call_pc = inst.i_loop_pc + 4 in
    emit st ~pc:call_pc ~op:op_call ~src1:Reg.none ~src2:Reg.none ~dst:Reg.none ~addr:0
      ~taken:true ~target:helper.h_base;
    Array.iter (emit_slot st) helper.h_body;
    let ret_pc = helper.h_base + (4 * Array.length helper.h_body) in
    emit st ~pc:ret_pc ~op:op_return ~src1:Reg.none ~src2:Reg.none ~dst:Reg.none ~addr:0
      ~taken:true ~target:(call_pc + 4)
  end

(* One visit = trip_count loop iterations plus an occasional helper call.
   If control is not already at the kernel entry (the previous visit ended
   elsewhere), an explicit jump connects the flow, as a real caller
   would. *)
let run_visit st (inst : Kernel.instance) =
  let spec = inst.i_spec in
  if st.next_pc <> 0 && st.next_pc <> inst.i_code_base then
    emit st ~pc:st.next_pc ~op:op_jump ~src1:Reg.none ~src2:Reg.none ~dst:Reg.none ~addr:0
      ~taken:true ~target:inst.i_code_base;
  inst.i_visits <- inst.i_visits + 1;
  for it = 1 to spec.trip_count do
    run_iteration st inst;
    let taken = it < spec.trip_count in
    emit st ~pc:inst.i_loop_pc ~op:op_branch ~src1:0 ~src2:Reg.none ~dst:Reg.none ~addr:0 ~taken
      ~target:inst.i_code_base
  done;
  if Rng.bernoulli st.rng ~p:spec.helper_call_prob then run_helper st inst

(* Address-space layout: each kernel instance gets a private code region and
   a private data region.  The spacing is deliberately not a power of two:
   power-of-two spacing would make the corresponding slots of every kernel
   alias to the same branch-predictor entries and cache sets downstream. *)
let code_base_for idx = 0x0040_0000 + (idx * 0x0101_0c40)
let data_base_for idx = 0x4000_0000 + (idx * 0x1010_4c80)

type phase_rt = { kernels : (float * Kernel.instance) array; length : int }

let build_phases program rng =
  let idx = ref 0 in
  List.map
    (fun (ph : Program.phase) ->
      let kernels =
        List.map
          (fun (w, spec) ->
            let k = !idx in
            incr idx;
            ( w,
              Kernel.instantiate spec ~rng ~code_base:(code_base_for k)
                ~data_base:(data_base_for k) ))
          ph.ph_kernels
      in
      { kernels = Array.of_list kernels; length = ph.ph_length })
    program.Program.phases

let run program ~icount ~sink =
  (match Program.validate program with Ok () -> () | Error msg -> invalid_arg msg);
  if icount <= 0 then 0
  else begin
    let rng = Rng.create ~seed:program.Program.seed in
    let phases = Array.of_list (build_phases program rng) in
    let st =
      {
        rng;
        chunk = Chunk.create ();
        deliver = sink.Sink.on_chunk;
        emitted = 0;
        limit = icount;
        ghist = 0;
        next_pc = 0;
      }
    in
    Obs.span "trace.gen" (fun () ->
        try
          let phase_idx = ref 0 in
          while true do
            let ph = phases.(!phase_idx mod Array.length phases) in
            incr phase_idx;
            let budget_end = st.emitted + ph.length in
            while st.emitted < budget_end do
              let inst = Rng.pick_weighted st.rng ph.kernels in
              run_visit st inst
            done
          done
        with Done -> ());
    st.emitted
  end

let preview program ~n =
  let sink, read = Sink.collect ~limit:n () in
  let (_ : int) = run program ~icount:n ~sink in
  read ()
