(** [mica compare RUN_A RUN_B]: per-characteristic and per-bench deltas
    between two run directories, under configurable relative tolerances.

    Deltas use the symmetric relative measure
    [(b - a) / max (|a|, |b|)], which is antisymmetric under argument
    swap (a metamorphic law the tests pin) and well-defined at zero.
    Characteristic and counter drift gates in both directions — the
    datasets are deterministic, so any drift beyond tolerance is a
    semantic change.  Bench deltas gate only on regression (B slower than
    A beyond tolerance); a speedup is reported but never fails the run.

    Tolerances are meant to be grounded in [mica variance] output over
    repeated same-config runs, not guessed. *)

type tolerance = { char_rel : float; bench_rel : float }

val default_tolerance : tolerance
(** [char_rel = 1e-6] (datasets are deterministic; the slack absorbs
    libm differences across build hosts), [bench_rel = 0.5]. *)

type cell_delta = {
  column : string;  (** characteristic / counter short name *)
  worst_row : string;  (** workload where the largest delta occurs *)
  a : float;
  b : float;
  rel : float;  (** symmetric relative delta at that worst cell *)
  exceeded : bool;
}

type bench_delta = {
  bench : string;
  a_ns : float;
  b_ns : float;
  rel_ns : float;
  regression : bool;  (** beyond tolerance, slower *)
  improvement : bool;  (** beyond tolerance, faster *)
}

type t = {
  run_a : string;
  run_b : string;
  tol : tolerance;
  char_deltas : cell_delta list;  (** one per common characteristic *)
  counter_deltas : cell_delta list;  (** one per common counter metric *)
  bench_deltas : bench_delta list;  (** one per common bench *)
  notes : string list;  (** asymmetric content: rows/columns/benches in one run only *)
}

val run : ?tol:tolerance -> Run_dir.t -> Run_dir.t -> t

val ok : t -> bool
(** No characteristic/counter drift beyond tolerance and no bench
    regression.  [mica compare] exits nonzero on [not (ok t)]. *)

val drift : t -> cell_delta list
val regressions : t -> bench_delta list

val render : t -> string

val to_json : t -> Mica_obs.Json.t
(** Stable key order, golden-testable. *)
