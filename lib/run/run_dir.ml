module Json = Mica_obs.Json
module Csv = Mica_util.Csv

type table = {
  row_names : string array;
  columns : string array;
  cells : float array array;
}

type t = {
  dir : string;
  manifest : Manifest.t;
  mica : table option;
  hpc : table option;
  metrics : Json.t option;
  bench : Json.t option;
}

let manifest_file = "manifest.json"
let mica_file = "mica_dataset.csv"
let hpc_file = "hpc_dataset.csv"
let metrics_file = "metrics.json"
let bench_file = "bench.json"

let timestamp () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let csv_of_table t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (String.concat "," (List.map Csv.escape_field ("name" :: Array.to_list t.columns)));
  Buffer.add_char b '\n';
  Array.iteri
    (fun i name ->
      Buffer.add_string b (Csv.escape_field name);
      Array.iter (fun v -> Buffer.add_string b (Printf.sprintf ",%.17g" v)) t.cells.(i);
      Buffer.add_char b '\n')
    t.row_names;
  Buffer.contents b

let table_of_csv csv =
  match String.split_on_char '\n' csv with
  | [] | [ "" ] -> Error "empty dataset"
  | header :: body -> (
    match Csv.parse_line header with
    | "name" :: columns ->
      let columns = Array.of_list columns in
      let arity = Array.length columns in
      let rows =
        List.fold_left
          (fun acc line ->
            match acc with
            | Error _ as e -> e
            | Ok acc ->
              if String.trim line = "" then Ok acc
              else begin
                match Csv.parse_line line with
                | name :: fields when List.length fields = arity -> (
                  let row = Array.make arity 0.0 in
                  try
                    List.iteri
                      (fun j s ->
                        match float_of_string_opt s with
                        | Some v -> row.(j) <- v
                        | None -> raise Exit)
                      fields;
                    Ok ((name, row) :: acc)
                  with Exit -> Error (Printf.sprintf "unparsable value in row %S" name))
                | name :: _ -> Error (Printf.sprintf "row %S has the wrong arity" name)
                | [] -> Ok acc
              end)
          (Ok []) body
      in
      Result.map
        (fun rows ->
          let rows = List.rev rows in
          {
            row_names = Array.of_list (List.map fst rows);
            columns;
            cells = Array.of_list (List.map snd rows);
          })
        rows
    | _ -> Error "dataset header does not start with 'name'")

type artifact = { filename : string; contents : string }

let write_manifest dir manifest =
  Run_io.write_checksummed (Filename.concat dir manifest_file)
    (Json.to_string ~pretty:true (Manifest.to_json manifest) ^ "\n")

let commit ~root ?dirname ~manifest ~artifacts () =
  let base =
    match dirname with
    | Some d -> d
    | None -> Printf.sprintf "%s-%s" manifest.Manifest.created manifest.Manifest.tag
  in
  Run_io.mkdir_p root;
  (* Uniquify: concurrent or same-second runs get .2, .3, ... *)
  let rec claim n =
    let candidate = if n = 1 then base else Printf.sprintf "%s.%d" base n in
    let path = Filename.concat root candidate in
    if Sys.file_exists path then claim (n + 1)
    else begin
      (try Sys.mkdir path 0o755 with Sys_error _ -> ());
      path
    end
  in
  let dir = claim 1 in
  List.iter (fun a -> Run_io.atomic_write (Filename.concat dir a.filename) a.contents) artifacts;
  let files =
    List.sort compare (List.map (fun a -> (a.filename, Run_io.md5_hex a.contents)) artifacts)
  in
  write_manifest dir { manifest with Manifest.files };
  dir

let read_manifest dir =
  match Run_io.read_checksummed (Filename.concat dir manifest_file) with
  | Error Run_io.Missing -> Error (Printf.sprintf "%s: no %s (not a run directory)" dir manifest_file)
  | Error e -> Error (Printf.sprintf "%s: %s %s" dir manifest_file (Run_io.describe_error e))
  | Ok body -> (
    match Json.parse body with
    | Error msg -> Error (Printf.sprintf "%s: %s does not parse: %s" dir manifest_file msg)
    | Ok json -> (
      match Manifest.of_json json with
      | Error msg -> Error (Printf.sprintf "%s: %s: %s" dir manifest_file msg)
      | Ok m -> Ok m))

let refresh_artifact ~dir ~filename ~contents =
  match read_manifest dir with
  | Error msg -> failwith ("Run_dir.refresh_artifact: " ^ msg)
  | Ok manifest ->
    Run_io.atomic_write (Filename.concat dir filename) contents;
    let files =
      List.sort compare
        ((filename, Run_io.md5_hex contents)
        :: List.remove_assoc filename manifest.Manifest.files)
    in
    write_manifest dir { manifest with Manifest.files }

let load dir =
  let ( let* ) = Result.bind in
  let* manifest = read_manifest dir in
  (* Every artifact the manifest records must be present and match its
     digest: the run loads all-or-nothing. *)
  let* artifacts =
    List.fold_left
      (fun acc (filename, digest) ->
        let* acc = acc in
        match Run_io.read_file (Filename.concat dir filename) with
        | Error e -> Error (Printf.sprintf "%s: %s %s" dir filename (Run_io.describe_error e))
        | Ok contents ->
          if Run_io.md5_hex contents <> digest then
            Error
              (Printf.sprintf "%s: %s corrupt: content does not match its manifest digest" dir
                 filename)
          else Ok ((filename, contents) :: acc))
      (Ok []) manifest.Manifest.files
  in
  let find name = List.assoc_opt name artifacts in
  let* mica =
    match find mica_file with
    | None -> Ok None
    | Some csv -> (
      match table_of_csv csv with
      | Ok t -> Ok (Some t)
      | Error msg -> Error (Printf.sprintf "%s: %s: %s" dir mica_file msg))
  in
  let* hpc =
    match find hpc_file with
    | None -> Ok None
    | Some csv -> (
      match table_of_csv csv with
      | Ok t -> Ok (Some t)
      | Error msg -> Error (Printf.sprintf "%s: %s: %s" dir hpc_file msg))
  in
  let parse_json name = function
    | None -> Ok None
    | Some body -> (
      match Json.parse body with
      | Ok j -> Ok (Some j)
      | Error msg -> Error (Printf.sprintf "%s: %s does not parse: %s" dir name msg))
  in
  let* metrics = parse_json metrics_file (find metrics_file) in
  let* bench = parse_json bench_file (find bench_file) in
  Ok { dir; manifest; mica; hpc; metrics; bench }

let list_runs root =
  if not (Sys.file_exists root) then []
  else begin
    let entries = try Array.to_list (Sys.readdir root) with Sys_error _ -> [] in
    entries
    |> List.filter (fun name ->
           let dir = Filename.concat root name in
           (try Sys.is_directory dir with Sys_error _ -> false)
           && Sys.file_exists (Filename.concat dir manifest_file))
    |> List.sort compare
  end

let latest root =
  match List.rev (list_runs root) with
  | [] -> None
  | name :: _ -> Some (Filename.concat root name)

(* Distinguish "this argument names a run" from "this argument is not
   about runs at all" from "this argument clearly meant a run but cannot
   resolve to one" — the CLI falls through to workload resolution only on
   [`Not_run], so a dangling symlink or an empty runs/ root produces a
   run-specific diagnostic instead of a confusing `no workload matches'. *)
let resolve p =
  let is_dir d = try Sys.is_directory d with Sys_error _ -> false in
  let is_run d = is_dir d && Sys.file_exists (Filename.concat d manifest_file) in
  let dangling_symlink d =
    (* [lstat] sees the link itself; [file_exists] follows it. *)
    match Unix.lstat d with
    | { Unix.st_kind = Unix.S_LNK; _ } -> not (Sys.file_exists d)
    | _ -> false
    | exception Unix.Unix_error _ -> false
  in
  if is_run p then `Run p
  else if dangling_symlink p then
    `Error
      (Printf.sprintf "%s is a dangling symlink (its target no longer exists); remove it or point it at a run directory" p)
  else if Filename.basename p = "latest" then begin
    let root = Filename.dirname p in
    if not (Sys.file_exists root) then
      `Error
        (Printf.sprintf "%s: cannot resolve latest run: %s does not exist (no runs have been committed yet)" p root)
    else begin
      match latest root with
      | Some d -> `Run d
      | None ->
        `Error
          (Printf.sprintf "%s: cannot resolve latest run: %s contains no run directories (run a characterizing subcommand first, or pass a run directory explicitly)" p root)
    end
  end
  else if is_dir p then
    `Error (Printf.sprintf "%s is a directory but not a run directory (it has no %s)" p manifest_file)
  else `Not_run
