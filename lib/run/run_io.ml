module Fault = Mica_util.Fault

let format_version = "v1"
let header_prefix = "#mica-run "

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let atomic_write path contents =
  Fault.check Fault.Cache_write ~key:(Hashtbl.hash path);
  mkdir_p (Filename.dirname path);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let md5_hex s = Digest.to_hex (Digest.string s)

let write_checksummed path body =
  atomic_write path (Printf.sprintf "%s%s md5:%s\n%s" header_prefix format_version (md5_hex body) body)

type read_error =
  | Missing
  | Unreadable of string
  | Corrupt of string
  | Foreign_version of string

let describe_error = function
  | Missing -> "missing"
  | Unreadable msg -> "unreadable: " ^ msg
  | Corrupt msg -> "corrupt: " ^ msg
  | Foreign_version v -> "written by foreign format version " ^ v

let read_file path =
  if not (Sys.file_exists path) then Error Missing
  else
    match
      Fault.check Fault.Cache_read ~key:(Hashtbl.hash path);
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> Ok contents
    | exception Fault.Injected msg -> Error (Unreadable ("injected fault: " ^ msg))
    | exception Sys_error msg -> Error (Unreadable msg)

let split_first_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let read_checksummed path =
  match read_file path with
  | Error _ as e -> e
  | Ok contents ->
    if
      String.length contents < String.length header_prefix
      || String.sub contents 0 (String.length header_prefix) <> header_prefix
    then Error (Corrupt "missing checksum header")
    else begin
      let header, body = split_first_line contents in
      let header =
        String.sub header (String.length header_prefix)
          (String.length header - String.length header_prefix)
      in
      match String.split_on_char ' ' (String.trim header) with
      | [ version; digest ]
        when String.length digest > 4 && String.sub digest 0 4 = "md5:" ->
        if version <> format_version then Error (Foreign_version version)
        else if String.sub digest 4 (String.length digest - 4) = md5_hex body then Ok body
        else Error (Corrupt "content does not match its recorded digest")
      | _ -> Error (Corrupt "malformed checksum header")
    end

(* HEAD without forking: resolve [.git/HEAD] through loose refs and
   [packed-refs], walking up from the current directory (run directories
   are created from the repo root in practice, but tests may chdir). *)
let git_rev () =
  let read path =
    match read_file path with Ok s -> Some s | Error _ -> None
  in
  let rec find_git dir depth =
    if depth > 6 then None
    else
      let candidate = Filename.concat dir ".git" in
      if Sys.file_exists candidate then Some candidate
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git parent (depth + 1)
  in
  match find_git (Sys.getcwd ()) 0 with
  | exception Sys_error _ -> "unknown"
  | None -> "unknown"
  | Some git_dir -> (
    match read (Filename.concat git_dir "HEAD") with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim head in
      match String.length head >= 5 && String.sub head 0 5 = "ref: " with
      | false -> if head = "" then "unknown" else head
      | true -> (
        let refname = String.trim (String.sub head 5 (String.length head - 5)) in
        match read (Filename.concat git_dir refname) with
        | Some rev when String.trim rev <> "" -> String.trim rev
        | _ -> (
          (* loose ref absent: look in packed-refs *)
          match read (Filename.concat git_dir "packed-refs") with
          | None -> "unknown"
          | Some packed ->
            let lines = String.split_on_char '\n' packed in
            let matching =
              List.find_opt
                (fun line ->
                  match String.index_opt line ' ' with
                  | Some i -> String.sub line (i + 1) (String.length line - i - 1) = refname
                  | None -> false)
                lines
            in
            (match matching with
            | Some line -> (
              match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> "unknown")
            | None -> "unknown")))))
