(** Checksummed, crash-safe file IO for run directories.

    Every run-directory artifact is committed with the PR 4 cache
    discipline: contents go to a sibling [.tmp] file renamed over the
    target (a kill at any instant leaves the old file or the new one,
    never a truncated mix), and the manifest additionally carries a
    [#mica-run <version> md5:<hex>] first line over its body so a
    truncated or bit-rotted manifest is detected on read instead of being
    half-parsed.  Reads never raise: corruption is a value. *)

val format_version : string
(** Bumped when the run-directory schema changes incompatibly. *)

val mkdir_p : string -> unit

val atomic_write : string -> string -> unit
(** Temp-file + rename commit; honors the [Cache_write] fault-injection
    point so chaos runs exercise commit failure. *)

val write_checksummed : string -> string -> unit
(** [atomic_write] of [header ^ body] where the header records
    {!format_version} and the body's MD5. *)

type read_error =
  | Missing  (** no such file *)
  | Unreadable of string  (** OS-level read failure (or injected fault) *)
  | Corrupt of string  (** missing/malformed header, or digest mismatch *)
  | Foreign_version of string  (** written by another format version *)

val describe_error : read_error -> string

val read_file : string -> (string, read_error) result
(** Plain read; only [Missing] or [Unreadable] possible. *)

val read_checksummed : string -> (string, read_error) result
(** Read, verify the header digest, and return the body. *)

val md5_hex : string -> string

val git_rev : unit -> string
(** Best-effort HEAD commit of the enclosing repository (read from
    [.git/HEAD] / [.git/packed-refs], no subprocess); ["unknown"] when it
    cannot be determined. *)
