(** The self-describing head of a run directory.

    [manifest.json] records everything needed to reproduce and audit the
    invocation that produced the run — subcommand, full argv, pipeline
    config, seeds, [MICA_JOBS], git revision, fault-injection spec — plus
    the MD5 of every other artifact in the directory, so a run loads
    all-or-nothing: any artifact that drifted from its recorded digest
    makes the whole run unreadable instead of silently comparing stale
    data.  Serialization goes through {!Mica_obs.Json} with a fixed key
    order, so the on-disk form is byte-stable and golden-testable. *)

type t = {
  schema : string;  (** ["mica-run/v1"] *)
  created : string;  (** local timestamp, [YYYYMMDD-HHMMSS] *)
  tag : string;  (** run-directory tag, usually the subcommand *)
  subcommand : string;
  argv : string list;  (** the full command line, verbatim *)
  git_rev : string;  (** ["unknown"] when undeterminable *)
  icount : int;
  ppm_order : int;
  jobs : int;
  retries : int;
  cache : bool;  (** whether the characterization cache was enabled *)
  mica_jobs_env : string option;  (** [$MICA_JOBS] at invocation time *)
  fault_spec : string option;  (** normalized installed fault plan, if any *)
  seeds : (string * string) list;  (** named seeds, e.g. [("ga", "0x6a5eed")] *)
  workloads : int;  (** rows in the characteristic-vector dataset *)
  report : string;  (** run-report summary line; [""] when not applicable *)
  files : (string * string) list;  (** artifact filename -> MD5 hex, sorted *)
}

val schema_version : string

val to_json : t -> Mica_obs.Json.t
(** Fixed key order; [of_json (to_json m) = Ok m]. *)

val of_json : Mica_obs.Json.t -> (t, string) result
(** Validates the schema tag and every field's type. *)
