module Json = Mica_obs.Json
module Descriptive = Mica_stats.Descriptive

type row = {
  metric : string;
  present : int;
  dropped : int;
  stats : Descriptive.summary;
  noisy : bool;
}

type t = {
  budget : float;
  runs : string list;
  rows : row list;
}

let default_budget = 0.2

let column_means (table : Run_dir.table) =
  let rows = Array.length table.Run_dir.cells in
  Array.to_list
    (Array.mapi
       (fun ci name ->
         let acc = ref 0.0 in
         for ri = 0 to rows - 1 do
           acc := !acc +. table.Run_dir.cells.(ri).(ci)
         done;
         (name, if rows = 0 then 0.0 else !acc /. float_of_int rows))
       table.Run_dir.columns)

let bench_metrics json =
  match Json.member "results" json with
  | Some (Json.List items) ->
    List.filter_map
      (fun item ->
        match (Json.member "name" item, Json.member "ns_per_run" item) with
        | Some (Json.Str name), Some v ->
          (* a null measurement (the bench writes null for a failed OLS
             fit) surfaces as a non-finite sample so [analyze] can count
             it as dropped instead of losing it silently *)
          Some ("bench/" ^ name, Option.value (Json.to_num v) ~default:Float.nan)
        | _ -> None)
      items
  | _ -> []

let span_metrics json =
  match Json.member "spans" json with
  | Some (Json.Obj spans) ->
    List.filter_map
      (fun (name, v) ->
        match Json.member "total_s" v with
        | Some t -> Option.map (fun s -> ("span/" ^ name, s)) (Json.to_num t)
        | None -> None)
      spans
  | _ -> []

let metrics_of_run (r : Run_dir.t) =
  let table prefix = function
    | None -> []
    | Some t -> List.map (fun (name, v) -> (prefix ^ name, v)) (column_means t)
  in
  table "char/" r.Run_dir.mica
  @ table "counter/" r.Run_dir.hpc
  @ (match r.Run_dir.bench with None -> [] | Some j -> bench_metrics j)
  @ match r.Run_dir.metrics with None -> [] | Some j -> span_metrics j

let analyze ?(budget = default_budget) runs =
  let per_run = List.map metrics_of_run runs in
  (* first-seen order of metric names across runs *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (List.iter (fun (name, _) ->
         if not (Hashtbl.mem seen name) then begin
           Hashtbl.replace seen name ();
           order := name :: !order
         end))
    per_run;
  let rows =
    List.rev !order
    |> List.filter_map (fun metric ->
           let found =
             List.filter_map (fun metrics -> List.assoc_opt metric metrics) per_run
           in
           (* non-finite samples (NaN characteristics, null bench fits)
              can't enter the summary; count them so the report says
              dropped=<n> instead of silently shrinking n *)
           let samples = List.filter Float.is_finite found in
           let dropped = List.length found - List.length samples in
           let present = List.length samples in
           if present < 2 then None
           else begin
             let stats = Descriptive.summarize (Array.of_list samples) in
             Some { metric; present; dropped; stats; noisy = stats.Descriptive.cv > budget }
           end)
  in
  let by_cv a b = compare b.stats.Descriptive.cv a.stats.Descriptive.cv in
  {
    budget;
    runs = List.map (fun (r : Run_dir.t) -> r.Run_dir.dir) runs;
    rows = List.stable_sort by_cv rows;
  }

let noisy t = List.filter (fun r -> r.noisy) t.rows

let render t =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "variance over %d runs (noise budget CV %.3g):\n" (List.length t.runs)
       t.budget);
  List.iter (fun r -> Buffer.add_string b (Printf.sprintf "  run %s\n" r)) t.runs;
  Buffer.add_string b
    (Printf.sprintf "%-44s %4s %14s %12s %8s\n" "metric" "n" "mean" "stddev" "cv");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-44s %4d %14.6g %12.4g %8.4f%s%s\n" r.metric r.present
           r.stats.Descriptive.mean_v r.stats.Descriptive.stddev_v r.stats.Descriptive.cv
           (if r.dropped > 0 then Printf.sprintf "  dropped=%d" r.dropped else "")
           (if r.noisy then "  NOISY" else "")))
    t.rows;
  let n = List.length (noisy t) in
  Buffer.add_string b
    (if n = 0 then "all metrics within the noise budget\n"
     else Printf.sprintf "%d metric(s) exceed the noise budget\n" n);
  Buffer.contents b

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "mica-variance/v1");
      ("budget", Json.Num t.budget);
      ("runs", Json.List (List.map (fun r -> Json.Str r) t.runs));
      ("noisy", Json.Num (float_of_int (List.length (noisy t))));
      ( "metrics",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("metric", Json.Str r.metric);
                   ("n", Json.Num (float_of_int r.present));
                   ("dropped", Json.Num (float_of_int r.dropped));
                   ("mean", Json.Num r.stats.Descriptive.mean_v);
                   ("stddev", Json.Num r.stats.Descriptive.stddev_v);
                   ("cv", Json.Num r.stats.Descriptive.cv);
                   ("noisy", Json.Bool r.noisy);
                 ])
             t.rows) );
    ]
