module Json = Mica_obs.Json

type t = {
  schema : string;
  created : string;
  tag : string;
  subcommand : string;
  argv : string list;
  git_rev : string;
  icount : int;
  ppm_order : int;
  jobs : int;
  retries : int;
  cache : bool;
  mica_jobs_env : string option;
  fault_spec : string option;
  seeds : (string * string) list;
  workloads : int;
  report : string;
  files : (string * string) list;
}

let schema_version = "mica-run/v1"

let opt_str = function None -> Json.Null | Some s -> Json.Str s
let num i = Json.Num (float_of_int i)

(* Key order is the schema: the golden test pins this exact sequence. *)
let to_json m =
  Json.Obj
    [
      ("schema", Json.Str m.schema);
      ("created", Json.Str m.created);
      ("tag", Json.Str m.tag);
      ("subcommand", Json.Str m.subcommand);
      ("argv", Json.List (List.map (fun a -> Json.Str a) m.argv));
      ("git_rev", Json.Str m.git_rev);
      ( "config",
        Json.Obj
          [
            ("icount", num m.icount);
            ("ppm_order", num m.ppm_order);
            ("jobs", num m.jobs);
            ("retries", num m.retries);
            ("cache", Json.Bool m.cache);
          ] );
      ("mica_jobs_env", opt_str m.mica_jobs_env);
      ("fault_spec", opt_str m.fault_spec);
      ("seeds", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.seeds));
      ("workloads", num m.workloads);
      ("report", Json.Str m.report);
      ("files", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.files));
    ]

(* Strict field-by-field decoding: a manifest that parses as JSON but
   does not match the schema is a foreign or damaged run, reported as
   such rather than defaulted over. *)
let of_json json =
  let ( let* ) = Result.bind in
  let field name j = Option.to_result ~none:("missing field " ^ name) (Json.member name j) in
  let str name j =
    let* v = field name j in
    match Json.to_str v with Some s -> Ok s | None -> Error (name ^ " is not a string")
  in
  let int_field name j =
    let* v = field name j in
    match Json.to_num v with
    | Some f when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (name ^ " is not an integer")
  in
  let opt_str_field name j =
    let* v = field name j in
    match v with
    | Json.Null -> Ok None
    | Json.Str s -> Ok (Some s)
    | _ -> Error (name ^ " is not a string or null")
  in
  let str_assoc name j =
    let* v = field name j in
    match v with
    | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_str v with
          | Some s -> Ok ((k, s) :: acc)
          | None -> Error (Printf.sprintf "%s.%s is not a string" name k))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> Error (name ^ " is not an object")
  in
  let* schema = str "schema" json in
  if schema <> schema_version then Error (Printf.sprintf "unsupported schema %S" schema)
  else
    let* created = str "created" json in
    let* tag = str "tag" json in
    let* subcommand = str "subcommand" json in
    let* argv_json = field "argv" json in
    let* argv =
      match argv_json with
      | Json.List items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> Error "argv element is not a string")
          (Ok []) items
        |> Result.map List.rev
      | _ -> Error "argv is not a list"
    in
    let* git_rev = str "git_rev" json in
    let* config = field "config" json in
    let* icount = int_field "icount" config in
    let* ppm_order = int_field "ppm_order" config in
    let* jobs = int_field "jobs" config in
    let* retries = int_field "retries" config in
    let* cache =
      match Json.member "cache" config with
      | Some (Json.Bool b) -> Ok b
      | _ -> Error "config.cache is not a bool"
    in
    let* mica_jobs_env = opt_str_field "mica_jobs_env" json in
    let* fault_spec = opt_str_field "fault_spec" json in
    let* seeds = str_assoc "seeds" json in
    let* workloads = int_field "workloads" json in
    let* report = str "report" json in
    let* files = str_assoc "files" json in
    Ok
      {
        schema;
        created;
        tag;
        subcommand;
        argv;
        git_rev;
        icount;
        ppm_order;
        jobs;
        retries;
        cache;
        mica_jobs_env;
        fault_spec;
        seeds;
        workloads;
        report;
        files;
      }
