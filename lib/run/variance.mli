(** [mica variance RUN..]: run-to-run noise measurement over N runs.

    For every metric the runs share — bench times ([bench/<name>]),
    observability span wall-times ([span/<name>]) and per-characteristic
    dataset means ([char/<name>], [counter/<name>]) — reports
    mean/stddev/CV across runs and flags metrics whose CV exceeds a noise
    budget.  This is how [mica compare] tolerances are grounded: a bench
    tolerance below the measured CV of the machine would gate on noise,
    one far above it would miss real regressions.  The characteristic
    rows double as a determinism check — same-config runs must report
    CV = 0 there. *)

type row = {
  metric : string;
  present : int;  (** runs carrying a finite sample of this metric *)
  dropped : int;
      (** non-finite samples (NaN characteristics, null bench fits)
          excluded from the summary; reported as [dropped=<n>] in the
          table and as ["dropped"] in the JSON rather than silently
          shrinking [present] *)
  stats : Mica_stats.Descriptive.summary;
  noisy : bool;  (** CV above the budget *)
}

type t = {
  budget : float;
  runs : string list;  (** run directory paths, in argument order *)
  rows : row list;  (** sorted by CV, noisiest first *)
}

val default_budget : float
(** 0.2 — a metric whose run-to-run CV exceeds 20% is flagged. *)

val metrics_of_run : Run_dir.t -> (string * float) list
(** The scalar metrics extracted from one run (exposed for tests). *)

val analyze : ?budget:float -> Run_dir.t list -> t
(** Rows cover every metric with a finite sample in at least two runs;
    non-finite samples are counted per row in [dropped]. *)

val noisy : t -> row list
val render : t -> string
val to_json : t -> Mica_obs.Json.t
