(** Self-describing run directories ([runs/<stamp>-<tag>/]).

    A run directory is the unit of reproducibility: every [mica] and
    [bench] invocation that characterizes workloads commits one, holding

    - [manifest.json] — provenance ({!Manifest.t}) plus the MD5 of every
      other artifact, itself under a checksum header;
    - [mica_dataset.csv] / [hpc_dataset.csv] — the characteristic-vector
      and counter datasets backing the invocation;
    - [metrics.json] — the observability snapshot ([Mica_obs.Obs]);
    - [bench.json] — bench measurements (bench runs only).

    [mica compare] and [mica variance] consume these directories; loading
    verifies every recorded digest and returns [Error] — never raises —
    on truncation, corruption or schema drift, so a damaged run is
    reported as unreadable instead of being half-compared. *)

type table = {
  row_names : string array;  (** workload ids *)
  columns : string array;  (** characteristic short names *)
  cells : float array array;
}

type t = {
  dir : string;  (** the run directory path *)
  manifest : Manifest.t;
  mica : table option;
  hpc : table option;
  metrics : Mica_obs.Json.t option;
  bench : Mica_obs.Json.t option;
}

val manifest_file : string
val mica_file : string
val hpc_file : string
val metrics_file : string
val bench_file : string

val timestamp : unit -> string
(** Local time as [YYYYMMDD-HHMMSS]. *)

val csv_of_table : table -> string
(** [name,<col>...] header then one row per observation, [%.17g] floats —
    the cache layout, so the dataset round-trips bit-exactly. *)

val table_of_csv : string -> (table, string) result

type artifact = { filename : string; contents : string }

val commit :
  root:string -> ?dirname:string -> manifest:Manifest.t -> artifacts:artifact list -> unit -> string
(** Create [root/<dirname>] (default [<manifest.created>-<manifest.tag>],
    uniquified with a numeric suffix on collision), write every artifact
    atomically, then write [manifest.json] — with [files] replaced by the
    artifacts' actual digests — last, under its checksum header.  Returns
    the run directory path.  May raise [Sys_error] / [Fault.Injected] on
    commit failure; callers treat the run directory as an optimization
    and degrade to a warning. *)

val refresh_artifact : dir:string -> filename:string -> contents:string -> unit
(** Rewrite one artifact of an existing run and re-commit the manifest
    with its updated digest.  Used to finalize [metrics.json] at process
    exit, after spans the initial commit could not have seen (e.g. the GA
    stage of [mica select-ga]) have run. *)

val load : string -> (t, string) result
(** Read and fully verify a run directory.  [Error] (with a
    human-readable reason) on: missing/truncated/corrupt manifest,
    foreign schema, any artifact listed in the manifest that is missing
    or fails its digest, or an unparsable dataset/JSON artifact. *)

val list_runs : string -> string list
(** Subdirectories of [root] containing a [manifest.json], sorted by name
    (i.e. by stamp); does not verify them. *)

val latest : string -> string option

val resolve : string -> [ `Run of string | `Not_run | `Error of string ]
(** Interpret a CLI path argument as a run directory.

    - [`Run dir]: the path is a run directory (holds a [manifest.json]),
      or is the magic basename [latest] and the newest run under its
      parent was found — [dir] is that run.
    - [`Error reason]: the argument clearly meant a run but cannot name
      one — a dangling symlink, a [latest] whose parent is missing or
      holds no runs, or an existing directory without a manifest.  The
      reason is a complete, actionable sentence.
    - [`Not_run]: the argument is not about run directories at all
      (e.g. a workload id); callers fall through to their other
      interpretations.

    Never raises. *)
