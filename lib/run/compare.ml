module Json = Mica_obs.Json

type tolerance = { char_rel : float; bench_rel : float }

let default_tolerance = { char_rel = 1e-6; bench_rel = 0.5 }

type cell_delta = {
  column : string;
  worst_row : string;
  a : float;
  b : float;
  rel : float;
  exceeded : bool;
}

type bench_delta = {
  bench : string;
  a_ns : float;
  b_ns : float;
  rel_ns : float;
  regression : bool;
  improvement : bool;
}

type t = {
  run_a : string;
  run_b : string;
  tol : tolerance;
  char_deltas : cell_delta list;
  counter_deltas : cell_delta list;
  bench_deltas : bench_delta list;
  notes : string list;
}

(* Antisymmetric under swap and total: [compare] orders NaNs, so two
   bit-equal non-finite cells read as zero delta, while a finite/NaN pair
   falls through to the non-finite branch and is flagged. *)
let symrel a b =
  if compare a b = 0 then 0.0
  else if not (Float.is_finite a && Float.is_finite b) then Float.nan
  else (b -. a) /. Float.max (Float.abs a) (Float.abs b)

let index_of arr =
  let tbl = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i x -> Hashtbl.replace tbl x i) arr;
  tbl

(* One delta per column present in both tables: the worst (largest |rel|)
   cell over the rows the tables share, with the workload it occurs at. *)
let table_deltas ~tol_rel (ta : Run_dir.table) (tb : Run_dir.table) =
  let rows_b = index_of tb.Run_dir.row_names in
  let cols_b = index_of tb.Run_dir.columns in
  (* (name, row index in A, row index in B) for the rows both tables hold *)
  let common_rows =
    Array.to_list
      (Array.mapi
         (fun ri name -> Option.map (fun rj -> (name, ri, rj)) (Hashtbl.find_opt rows_b name))
         ta.Run_dir.row_names)
    |> List.filter_map Fun.id
  in
  let deltas =
    Array.to_list ta.Run_dir.columns
    |> List.mapi (fun ci column -> (ci, column))
    |> List.filter_map (fun (ci, column) ->
           match Hashtbl.find_opt cols_b column with
           | None -> None
           | Some cj ->
             let worst = ref { column; worst_row = ""; a = 0.0; b = 0.0; rel = 0.0; exceeded = false } in
             let worst_mag = ref (-1.0) in
             List.iter
               (fun (name, ri, rj) ->
                 let a = ta.Run_dir.cells.(ri).(ci) in
                 let b = tb.Run_dir.cells.(rj).(cj) in
                 let rel = symrel a b in
                 let mag = if Float.is_nan rel then Float.infinity else Float.abs rel in
                 if mag > !worst_mag then begin
                   worst_mag := mag;
                   worst :=
                     {
                       column;
                       worst_row = name;
                       a;
                       b;
                       rel;
                       exceeded = Float.is_nan rel || Float.abs rel > tol_rel;
                     }
                 end)
               common_rows;
             if common_rows = [] then None else Some !worst)
  in
  let only_in label (xs : string array) (other : (string, int) Hashtbl.t) =
    let missing = Array.to_list xs |> List.filter (fun x -> not (Hashtbl.mem other x)) in
    match missing with
    | [] -> []
    | _ ->
      [
        Printf.sprintf "%s only in one run: %s" label
          (String.concat ", " (if List.length missing > 6 then
             List.filteri (fun i _ -> i < 6) missing @ [ Printf.sprintf "... (%d total)" (List.length missing) ]
           else missing));
      ]
  in
  let rows_a = index_of ta.Run_dir.row_names in
  let cols_a = index_of ta.Run_dir.columns in
  let notes =
    only_in "workloads" ta.Run_dir.row_names rows_b
    @ only_in "workloads" tb.Run_dir.row_names rows_a
    @ only_in "columns" ta.Run_dir.columns cols_b
    @ only_in "columns" tb.Run_dir.columns cols_a
  in
  (deltas, notes)

(* bench.json results: [{"name": ..., "ns_per_run": ...}, ...] *)
let bench_results json =
  match Json.member "results" json with
  | Some (Json.List items) ->
    List.filter_map
      (fun item ->
        match (Json.member "name" item, Json.member "ns_per_run" item) with
        | Some (Json.Str name), Some v -> Option.map (fun ns -> (name, ns)) (Json.to_num v)
        | _ -> None)
      items
  | _ -> []

let bench_deltas ~tol_rel a b =
  let ra = bench_results a and rb = bench_results b in
  let deltas =
    List.filter_map
      (fun (name, a_ns) ->
        match List.assoc_opt name rb with
        | None -> None
        | Some b_ns ->
          let rel_ns = symrel a_ns b_ns in
          Some
            {
              bench = name;
              a_ns;
              b_ns;
              rel_ns;
              regression = Float.is_nan rel_ns || rel_ns > tol_rel;
              improvement = (not (Float.is_nan rel_ns)) && rel_ns < -.tol_rel;
            })
      ra
  in
  let only label xs other =
    match List.filter (fun (n, _) -> List.assoc_opt n other = None) xs with
    | [] -> []
    | missing ->
      [ Printf.sprintf "benches only in %s: %s" label (String.concat ", " (List.map fst missing)) ]
  in
  (deltas, only "A" ra rb @ only "B" rb ra)

let run ?(tol = default_tolerance) (a : Run_dir.t) (b : Run_dir.t) =
  let pair f oa ob =
    match (oa, ob) with Some x, Some y -> f x y | _ -> ([], [])
  in
  let char_deltas, char_notes =
    pair (table_deltas ~tol_rel:tol.char_rel) a.Run_dir.mica b.Run_dir.mica
  in
  let counter_deltas, counter_notes =
    pair (table_deltas ~tol_rel:tol.char_rel) a.Run_dir.hpc b.Run_dir.hpc
  in
  let bench_deltas, bench_notes =
    pair (bench_deltas ~tol_rel:tol.bench_rel) a.Run_dir.bench b.Run_dir.bench
  in
  let shape_notes =
    List.filter_map
      (fun (label, in_a, in_b) ->
        match (in_a, in_b) with
        | true, false -> Some (Printf.sprintf "%s present only in A" label)
        | false, true -> Some (Printf.sprintf "%s present only in B" label)
        | _ -> None)
      [
        ("mica dataset", a.Run_dir.mica <> None, b.Run_dir.mica <> None);
        ("hpc dataset", a.Run_dir.hpc <> None, b.Run_dir.hpc <> None);
        ("bench results", a.Run_dir.bench <> None, b.Run_dir.bench <> None);
      ]
  in
  {
    run_a = a.Run_dir.dir;
    run_b = b.Run_dir.dir;
    tol;
    char_deltas;
    counter_deltas;
    bench_deltas;
    notes = char_notes @ counter_notes @ bench_notes @ shape_notes;
  }

let drift t = List.filter (fun d -> d.exceeded) (t.char_deltas @ t.counter_deltas)
let regressions t = List.filter (fun d -> d.regression) t.bench_deltas
let ok t = drift t = [] && regressions t = []

let render t =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "compare %s -> %s\n" t.run_a t.run_b);
  Buffer.add_string b
    (Printf.sprintf "tolerances: characteristics %.3g rel, bench %.3g rel\n" t.tol.char_rel
       t.tol.bench_rel);
  let cells label deltas =
    let exceeded = List.filter (fun d -> d.exceeded) deltas in
    Buffer.add_string b
      (Printf.sprintf "%s: %d compared, %d beyond tolerance\n" label (List.length deltas)
         (List.length exceeded));
    List.iter
      (fun d ->
        Buffer.add_string b
          (Printf.sprintf "  DRIFT %-12s at %-45s %14.6g -> %-14.6g (rel %+.3g)\n" d.column
             d.worst_row d.a d.b d.rel))
      exceeded
  in
  cells "characteristics" t.char_deltas;
  cells "counters" t.counter_deltas;
  let regs = regressions t in
  let imps = List.filter (fun d -> d.improvement) t.bench_deltas in
  Buffer.add_string b
    (Printf.sprintf "benches: %d compared, %d regressions, %d improvements\n"
       (List.length t.bench_deltas) (List.length regs) (List.length imps));
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "  REGRESSION %-36s %12.0f ns -> %12.0f ns (rel %+.3f)\n" d.bench d.a_ns
           d.b_ns d.rel_ns))
    regs;
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "  improved   %-36s %12.0f ns -> %12.0f ns (rel %+.3f)\n" d.bench d.a_ns
           d.b_ns d.rel_ns))
    imps;
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  note: %s\n" n)) t.notes;
  Buffer.add_string b (if ok t then "verdict: OK\n" else "verdict: REGRESSION\n");
  Buffer.contents b

let to_json t =
  let cell d =
    Json.Obj
      [
        ("column", Json.Str d.column);
        ("worst_row", Json.Str d.worst_row);
        ("a", Json.Num d.a);
        ("b", Json.Num d.b);
        ("rel", Json.Num d.rel);
        ("exceeded", Json.Bool d.exceeded);
      ]
  in
  let bench d =
    Json.Obj
      [
        ("bench", Json.Str d.bench);
        ("a_ns", Json.Num d.a_ns);
        ("b_ns", Json.Num d.b_ns);
        ("rel", Json.Num d.rel_ns);
        ("regression", Json.Bool d.regression);
        ("improvement", Json.Bool d.improvement);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "mica-compare/v1");
      ("run_a", Json.Str t.run_a);
      ("run_b", Json.Str t.run_b);
      ( "tolerance",
        Json.Obj
          [ ("char_rel", Json.Num t.tol.char_rel); ("bench_rel", Json.Num t.tol.bench_rel) ] );
      ("ok", Json.Bool (ok t));
      ("drift", Json.Num (float_of_int (List.length (drift t))));
      ("regressions", Json.Num (float_of_int (List.length (regressions t))));
      ("characteristics", Json.List (List.map cell t.char_deltas));
      ("counters", Json.List (List.map cell t.counter_deltas));
      ("benches", Json.List (List.map bench t.bench_deltas));
      ("notes", Json.List (List.map (fun n -> Json.Str n) t.notes));
    ]
