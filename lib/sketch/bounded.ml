(* Fixed-capacity building blocks for the sketch analyzers.

   [Map] is a direct-mapped int -> int table: one hash, one slot, no
   probing and no growth.  A colliding insert simply evicts the previous
   resident ("latest wins"), which turns the exact per-key state of the
   streaming analyzers into a bounded approximation: the hot keys (the
   ones that dominate the characteristic) stay resident, cold keys decay
   away through eviction.  All operations are allocation-free.

   [Decay_hist] is a bounded histogram over fixed cutoffs with float
   counts, so the stream mode can down-weight history exponentially at
   window boundaries ([scale]) without unbounded state. *)

module Map = struct
  type t = {
    keys : int array;  (* -1 marks an empty slot *)
    vals : int array;
    mask : int;
    mutable resident : int;  (* occupied slots *)
    mutable evictions : int;
  }

  let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

  let create ~slots =
    if slots < 1 then invalid_arg "Bounded.Map.create: slots must be positive";
    let cap = ceil_pow2 (max 16 slots) 16 in
    { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; resident = 0; evictions = 0 }

  let slots t = t.mask + 1
  let resident t = t.resident
  let evictions t = t.evictions
  let state_bytes t = 2 * 8 * (t.mask + 1)

  let[@inline] slot t key = Cardinality.hash key land t.mask

  let find t key ~default =
    let i = slot t key in
    if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else default

  let mem t key = Array.unsafe_get t.keys (slot t key) = key

  let[@inline] claim t i key =
    let k = Array.unsafe_get t.keys i in
    if k <> key then begin
      if k = -1 then t.resident <- t.resident + 1 else t.evictions <- t.evictions + 1;
      Array.unsafe_set t.keys i key;
      true
    end
    else false

  let set t key v =
    if key < 0 then invalid_arg "Bounded.Map.set: negative key";
    let i = slot t key in
    ignore (claim t i key : bool);
    Array.unsafe_set t.vals i v

  (* [bump] adds [delta] when [key] is resident; an eviction restarts the
     count at [delta], as if the key had never been seen. *)
  let bump t key delta =
    if key < 0 then invalid_arg "Bounded.Map.bump: negative key";
    let i = slot t key in
    if claim t i key then Array.unsafe_set t.vals i delta
    else Array.unsafe_set t.vals i (Array.unsafe_get t.vals i + delta)

  let reset t =
    Array.fill t.keys 0 (t.mask + 1) (-1);
    t.resident <- 0;
    t.evictions <- 0

  let iter t f =
    Array.iteri (fun i k -> if k >= 0 then f k (Array.unsafe_get t.vals i)) t.keys
end

module Decay_hist = struct
  (* No running total: a [mutable float] field in this mixed record would
     be boxed, allocating on every store — and [record] runs per memory
     access in the stride sketches.  The total is a fold at read time. *)
  type t = {
    cutoffs : int array;  (* ascending; final implicit bucket is "> last" *)
    counts : float array;
  }

  let create ~cutoffs = { cutoffs; counts = Array.make (Array.length cutoffs + 1) 0.0 }

  (* top-level recursion: a nested closure here would allocate per record *)
  let rec bucket_from cutoffs v i n =
    if i >= n then n else if v <= Array.unsafe_get cutoffs i then i else bucket_from cutoffs v (i + 1) n

  let record ?(weight = 1.0) t v =
    let b = bucket_from t.cutoffs v 0 (Array.length t.cutoffs) in
    t.counts.(b) <- t.counts.(b) +. weight

  let scale t factor =
    for i = 0 to Array.length t.counts - 1 do
      t.counts.(i) <- t.counts.(i) *. factor
    done

  let total t = Array.fold_left ( +. ) 0.0 t.counts

  let cdf t =
    let denom = Float.max (total t) 1.0 in
    let out = Array.make (Array.length t.cutoffs) 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i _ ->
        acc := !acc +. t.counts.(i);
        out.(i) <- !acc /. denom)
      out;
    out

  let reset t = Array.fill t.counts 0 (Array.length t.counts) 0.0
  let state_bytes t = 8 * (Array.length t.counts + Array.length t.cutoffs)
end
