(** Sketched characterization: the full [Mica_analysis.Extended] vector
    from fixed-memory streaming estimators.

    Produces the same 56-characteristic vector (same Table II ordering)
    as the exact extended analyzer, but with every unbounded table
    replaced by a bounded estimator: working sets by {!Cardinality}
    sketches, stride and PPM per-key tables by {!Bounded.Map}, reuse
    distance by {!Sampled_reuse}.  Mix, ILP and register traffic reuse
    the exact analyzers (their state is fixed-size already), so those
    characteristics are exact by construction.

    Memory is fixed at creation from a byte budget and does not grow
    with trace length; accuracy is monotone in the budget.  All hashing
    is fixed-key ({!Cardinality.hash}), so vectors are bit-deterministic
    and invariant under chunk boundaries, RNG seeds and worker counts. *)

type t

(** How a byte budget is split across the estimator families.  Every
    component is monotone in [bytes]. *)
type plan = {
  bytes : int;
  ws_registers : int;  (** per working-set cardinality sketch (4 total) *)
  stride_slots : int;  (** last-address slots for local strides *)
  ppm_slots : int;  (** context slots per PPM variant (4 tables) *)
  hist_slots : int;  (** PPM local-history slots *)
  branch_slots : int;  (** per-branch statistics slots *)
  reuse_near_slots : int;  (** near recency slots in the reuse estimator *)
  reuse_capacity : int;  (** sampled far blocks in the reuse estimator *)
}

val default_bytes : int
(** 1 MiB. *)

val plan : ?bytes:int -> unit -> plan
(** Split [bytes] (default {!default_bytes}, min 4096) across the
    families: three eighths each to PPM contexts and reuse, the rest to
    strides, branch statistics, working sets and history.  Every
    component is monotone in [bytes]. *)

val create : ?ppm_order:int -> ?plan:plan -> unit -> t
val the_plan : t -> plan

val sink : t -> Mica_trace.Sink.t
(** Chunk sink; drop-in for [Mica_analysis.Extended.sink] in any
    pipeline that feeds [Sink.t]. *)

val vector : t -> float array
(** The 47 base characteristics ([Mica_analysis.Characteristics] order). *)

val extended_vector : t -> float array
(** All 56 characteristics ([Mica_analysis.Extended] order). *)

val instructions : t -> int

val reset : t -> unit
(** Return every estimator to its freshly-created state in place; the
    windowed streaming mode calls this at window boundaries. *)

val state_bytes : t -> int
(** Total resident estimator memory in bytes — fixed at creation,
    independent of trace length. *)

val static_branch_estimate : t -> float
(** Estimated number of static conditional branches. *)

val reuse_rate : t -> int
(** Current reuse-sampling rate (1 = still exact). *)

val analyze : ?ppm_order:int -> ?plan:plan -> Mica_trace.Program.t -> icount:int -> t
(** Generate [icount] instructions of [program] into a fresh sketch. *)
