(** Fixed-capacity state for the sketch analyzers: a direct-mapped
    int map with eviction, and a decayed bounded histogram. *)

module Map : sig
  (** Direct-mapped [int -> int] table.  One hash, one slot, no growth:
      a colliding insert evicts the previous resident (latest wins).
      Allocation-free on every operation; memory fixed at creation.

      Replaces the exact per-key [Mica_util.Int_map] tables (PPM
      contexts, per-PC last addresses, per-branch statistics) in the
      sketch path — hot keys stay resident, cold keys decay by
      eviction, and the approximation error shrinks as [slots] grows
      past the live key count (at which point the table is exact in
      the common no-collision case). *)

  type t

  val create : slots:int -> t
  (** Capacity is [slots] rounded up to a power of two, at least 16. *)

  val find : t -> int -> default:int -> int
  val mem : t -> int -> bool

  val set : t -> int -> int -> unit
  (** Insert or overwrite; evicts any colliding resident.  Raises
      [Invalid_argument] on negative keys. *)

  val bump : t -> int -> int -> unit
  (** [bump t key delta] adds [delta] to the resident count for [key];
      after an eviction the count restarts at [delta]. *)

  val reset : t -> unit
  (** Empty the table in place (no allocation). *)

  val iter : t -> (int -> int -> unit) -> unit
  val slots : t -> int
  val resident : t -> int
  val evictions : t -> int
  val state_bytes : t -> int
end

module Decay_hist : sig
  (** Histogram over fixed integer cutoffs (plus an implicit overflow
      bucket) with float-weighted counts and exponential decay. *)

  type t

  val create : cutoffs:int array -> t
  (** [cutoffs] ascending; values [v <= cutoffs.(i)] land in bucket [i],
      larger values in the overflow bucket. *)

  val record : ?weight:float -> t -> int -> unit
  val scale : t -> float -> unit
  (** Multiply every bucket (and the total) by a factor; the stream mode
      calls this at window boundaries to decay history exponentially. *)

  val cdf : t -> float array
  (** Cumulative fraction at each cutoff, denominated by the (decayed)
      total, clamped at 1.0 below — the same guard the exact analyzers
      apply to empty histograms. *)

  val total : t -> float
  val reset : t -> unit
  val state_bytes : t -> int
end
