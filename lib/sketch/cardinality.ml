(* Probabilistic cardinality: HyperLogLog registers with the standard
   linear-counting hybrid for the small-range regime.

   The exact working-set tables ([Mica_util.Int_map] used as a set) grow
   with the number of distinct blocks — the dominant memory term of a
   long-trace characterization.  This sketch holds one byte per register,
   fixed at creation: [add] is a hash, a shift and a byte max, and the
   estimate is read out in O(m).

   Determinism: the hash is a fixed-key multiply-xorshift finalizer whose
   key is drawn once from [Mica_util.Rng] at module initialization (a
   constant seed, so every process computes the same key).  The register
   array is a pure function of the *set* of keys added — register updates
   are maxes, so estimates are independent of insertion order and of how
   the stream was chunked. *)

(* One fixed key for the whole process, derived from the library's seeded
   generator rather than hard-coded, so the sketch family shares the
   repo-wide "all randomness flows from Rng" discipline. *)
let hash_key =
  Int64.to_int (Mica_util.Rng.bits64 (Mica_util.Rng.create ~seed:0x5ce7c4a9L)) land max_int

(* Keyed multiply-xorshift finalizer in native int arithmetic — Int64 ops
   here would box on every call, and this hash runs several times per
   instruction across the sketch family.  Two rounds of odd-constant
   multiply (wrapping mod 2^63) and xor-shift mix both the high and low
   bits; [land max_int] clears the sign after each overflow. *)
let[@inline] hash key =
  let z = (key + hash_key) land max_int in
  let z = (z lxor (z lsr 31)) * 0x2545F4914F6CDD1D land max_int in
  let z = (z lxor (z lsr 29)) * 0x3C79AC492BA7B653 land max_int in
  z lxor (z lsr 32)

type t = {
  p : int;  (* log2 of the register count *)
  m : int;  (* register count *)
  regs : Bytes.t;
}

let create ?(registers = 1024) () =
  if registers < 16 then invalid_arg "Cardinality.create: need at least 16 registers";
  if registers land (registers - 1) <> 0 then
    invalid_arg "Cardinality.create: registers must be a power of two";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  { p = log2 registers 0; m = registers; regs = Bytes.make registers '\000' }

let registers t = t.m
let state_bytes t = t.m

let reset t = Bytes.fill t.regs 0 t.m '\000'

(* rank of the remaining hash bits: position of the lowest set bit, plus
   one, capped by the number of usable bits.  62 - p bits survive above
   the register index. *)
let[@inline] rank ~p w =
  let bits = 62 - p in
  if w = 0 then bits + 1
  else begin
    let r = ref 1 in
    let w = ref w in
    while !w land 1 = 0 do
      incr r;
      w := !w lsr 1
    done;
    min !r (bits + 1)
  end

let add t key =
  let h = hash key in
  let idx = h land (t.m - 1) in
  let r = rank ~p:t.p (h lsr t.p) in
  if r > Char.code (Bytes.unsafe_get t.regs idx) then
    Bytes.unsafe_set t.regs idx (Char.unsafe_chr r)

let alpha m =
  if m <= 16 then 0.673
  else if m <= 32 then 0.697
  else if m <= 64 then 0.709
  else 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let estimate t =
  let m = float_of_int t.m in
  let sum = ref 0.0 and zeros = ref 0 in
  for i = 0 to t.m - 1 do
    let r = Char.code (Bytes.unsafe_get t.regs i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1.0 /. float_of_int (1 lsl r))
  done;
  let raw = alpha t.m *. m *. m /. !sum in
  (* small-range regime: linear counting over the zero registers is far
     more accurate than the raw harmonic-mean estimate *)
  if raw <= 2.5 *. m && !zeros > 0 then m *. log (m /. float_of_int !zeros) else raw

let merge a b =
  if a.m <> b.m then invalid_arg "Cardinality.merge: register counts differ";
  let t = create ~registers:a.m () in
  for i = 0 to a.m - 1 do
    let ra = Char.code (Bytes.unsafe_get a.regs i)
    and rb = Char.code (Bytes.unsafe_get b.regs i) in
    Bytes.unsafe_set t.regs i (Char.unsafe_chr (max ra rb))
  done;
  t

let equal a b = a.m = b.m && Bytes.equal a.regs b.regs
