(** Probabilistic cardinality estimation: a HyperLogLog / linear-counting
    hybrid with one byte per register.

    Replaces the exact working-set tables in the sketch path: memory is
    fixed at creation (one byte per register) regardless of how many
    distinct keys the stream touches.  Relative error of the HLL regime is
    about [1.04 / sqrt registers]; the small-range regime (estimates below
    [2.5 * registers]) switches to linear counting over the zero
    registers, which is much tighter for the page-level working sets.

    Deterministic: the hash key is fixed (derived from {!Mica_util.Rng}
    at a constant seed), and registers accumulate via [max], so the state
    is a pure function of the key {e set} — independent of insertion
    order, duplication and chunking. *)

type t

val create : ?registers:int -> unit -> t
(** [registers] (default 1024) must be a power of two, at least 16.
    Memory is one byte per register. *)

val add : t -> int -> unit
(** Observe a key.  Duplicates are free. *)

val estimate : t -> float
(** Estimated number of distinct keys observed. *)

val merge : t -> t -> t
(** Register-wise max; the merge of two sketches estimates the union of
    their streams.  Associative and commutative (bit-exactly).  Raises
    [Invalid_argument] if register counts differ. *)

val equal : t -> t -> bool
(** Bit-equality of the register state (same size, same registers). *)

val reset : t -> unit
(** Clear all registers in place (no allocation). *)

val registers : t -> int
val state_bytes : t -> int
(** Resident sketch memory in bytes (the register array). *)

val hash : int -> int
(** The sketch family's shared 63-bit key hash; exposed for the sampled
    structures ({!Sampled_reuse}, {!Bounded}) so every sketch derives its
    placement from the same deterministic mixing. *)
