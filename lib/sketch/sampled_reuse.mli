(** Reuse-distance estimation in fixed memory: a near/far hybrid.

    A direct-mapped recency table over all blocks measures short reuse
    distances at full weight (collision losses are debiased by occupancy
    inversion, so distances up to the table size stay accurate);
    a hash-sampled set of blocks with exact last-position tracking
    covers the far tail, recording rate-scaled distances at weight
    [rate].  Every access contributes through exactly one path.

    Memory is O(1) in trace length: the sampled set is capped (the rate
    doubles adaptively when it would overflow) and both position clocks
    are compacted in place when they reach their Fenwick capacity.

    Deterministic: placement flows through {!Cardinality.hash}, so
    results are invariant under chunking, repeated runs and the worker
    count. *)

type t

val create :
  ?block_bytes:int -> ?near_slots:int -> ?capacity:int -> cutoffs:int array -> unit -> t
(** [block_bytes] (default 32) must be a positive power of two.
    [near_slots] (default 4096) sizes the near recency table; distances
    up to roughly that many blocks are measured at full weight.
    [capacity] (default 1024) bounds the sampled far set.  Both are
    rounded up to powers of two, minimum 16.  [cutoffs] are the
    ascending reuse distances at which {!cdf} reports. *)

val access : t -> int -> unit
(** Observe one data access at a byte address. *)

val cdf : t -> float array
(** Estimated P(reuse distance <= cutoff) per creation cutoff,
    denominated by the exact access count — same semantics as
    [Mica_analysis.Reuse.cdf]. *)

val mean_log2 : t -> float
(** Weighted mean of log2 (distance + 1) over finite recorded distances. *)

val accesses : t -> int
(** Exact: every access is counted. *)

val cold_estimate : t -> float
(** Estimated first-access count: sampled cold accesses scaled by the
    sampling rate in force when each was observed. *)

val rate : t -> int
(** Current far-side sampling rate (1 = still tracking every block). *)

val tracked : t -> int
(** Sampled blocks currently resident in the far table. *)

val near_resident : t -> int
val rate_doublings : t -> int
val compactions : t -> int

val reset : t -> unit
(** Return to the freshly-created state (rate included) in place. *)

val state_bytes : t -> int
(** Resident estimator memory in bytes — fixed at creation. *)
