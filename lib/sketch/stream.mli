(** Windowed streaming characterization over a {!Sketch}.

    The trace is consumed in tumbling windows of a fixed instruction
    count.  At each boundary the window's extended characteristic vector
    is read out, folded into an exponentially-decayed running vector,
    optionally emitted as a snapshot, and the sketch is reset in place —
    so resident memory is O(1) in trace length.

    Windowing is invariant under chunking: straddling chunks are split
    by restaging, and the same trace at any chunk capacity yields
    bit-identical snapshots. *)

type snapshot = {
  index : int;  (** window number, 0-based *)
  start_instr : int;
  instructions : int;  (** window length; the final window may be short *)
  vector : float array;  (** this window's extended vector (56 values) *)
  decayed : float array;  (** EWMA over windows up to and including this one *)
}

type t

val default_window : int
(** 65536 instructions. *)

val default_alpha : float
(** 0.5 — the newest window's EWMA weight. *)

val create :
  ?window:int ->
  ?snapshot_every:int ->
  ?alpha:float ->
  ?ppm_order:int ->
  ?plan:Sketch.plan ->
  unit ->
  t
(** [window] instructions per window; a snapshot is emitted every
    [snapshot_every] windows (default 1) plus always for a trailing
    partial window; [alpha] in (0, 1]. *)

val sink : t -> Mica_trace.Sink.t

val finish : t -> snapshot array
(** Close any partial window and return all emitted snapshots in window
    order.  Idempotent: later calls return the same array. *)

val windows : t -> int
val instructions : t -> int

val decayed : t -> float array option
(** The current EWMA vector; [None] before the first window closes. *)

val state_bytes : t -> int

val run :
  ?window:int ->
  ?snapshot_every:int ->
  ?alpha:float ->
  ?ppm_order:int ->
  ?plan:Sketch.plan ->
  Mica_trace.Program.t ->
  icount:int ->
  t * snapshot array
(** Generate, stream and finish in one call. *)

val assign : centroids:float array array -> float array -> int
(** Index of the nearest centroid (squared-Euclidean; ties break to the
    lowest index).  Raises [Invalid_argument] on an empty centroid set. *)

val timeline : centroids:float array array -> snapshot array -> int array
(** Per-snapshot {!assign} over the window vectors. *)

val purity : labels:int array -> oracle:int array -> float
(** Cluster purity of an online labeling against an oracle labeling:
    each cluster votes for its majority oracle label and purity is the
    fraction of windows covered.  Compared over the common prefix; 0.0
    when either side is empty. *)
