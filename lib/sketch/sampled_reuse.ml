(* Reuse-distance estimation in fixed memory: a near/far hybrid.

   The exact [Mica_analysis.Reuse] keeps one table entry and one Fenwick
   mark per distinct block ever touched — state (and allocation) grows
   with the trace.  This estimator bounds both with two fixed structures:

   NEAR — a direct-mapped recency table over ALL blocks.  Each slot holds
   a block and its last access position; a Fenwick tree marks resident
   positions.  A re-access that finds its block resident counts the
   marks since its previous position: the intervening distinct blocks
   still resident.  That count undercounts the true distance d, because
   collisions evict residents (E[marks] = n(1-e^-d/n)), so it is
   debiased by occupancy inversion, d = -n ln(1-marks/n), and recorded
   with weight 1.  Short distances, which
   dominate the reuse CDF and are carried by few hot blocks that uniform
   block-sampling would miss, are therefore measured at full weight.

   FAR — the sampled tail.  A block is sampled iff the low bits of its
   fixed hash are zero; sampled blocks get exact last-position tracking
   in an open-addressing table with its own Fenwick clock.  When a
   sampled block's access was NOT a near hit (distance beyond the near
   horizon, or cold), its distance is taken from the lower-variance of
   two estimates — rate-scaled sampled-block marks from the far clock
   (noise ~ sqrt(d * rate)), or the occupancy inversion of the near
   marks since the entry's stored near-clock anchor (noise ~ sqrt(n)
   while the near table is unsaturated) — and recorded with weight
   [rate]; a sampled first access records an estimated cold miss with
   weight [rate].  Every
   access thus contributes through exactly one path, so the recorded
   weights estimate the full access stream.

   Two mechanisms keep the far side O(1):
   - adaptive rate doubling (Wegman-style): when the sampled set would
     exceed capacity, the rate doubles and blocks failing the new mask
     are dropped.  Masks are nested, so a surviving block was never
     dropped — a far-table miss is a genuine first access.
   - position compaction (both sides): when a position clock reaches its
     Fenwick capacity, live positions are renumbered 1..n in order.
     Distances are mark counts between positions, which order-preserving
     renumbering leaves intact.

   Placement flows through {!Cardinality.hash}, so results are
   bit-deterministic and invariant under chunking and worker counts. *)

type t = {
  block_shift : int;
  (* near: direct-mapped recency table over all blocks *)
  nsize : int;  (* slots, power of two *)
  nkeys : int array;  (* -1 marks an empty slot *)
  npos : int array;
  ntree : int array;
  nfen_cap : int;  (* 4 * nsize *)
  mutable ntime : int;
  mutable nresident : int;
  (* far: exact tracking of the hash-sampled blocks *)
  fcap : int;  (* max sampled blocks *)
  ftsize : int;  (* open-addressing table size, 2 * fcap *)
  fkeys : int array;
  fpos : int array;
  fnear : int array;  (* near-clock anchor of each entry's last access *)
  mutable fresident : int;
  mutable rate : int;  (* power of two; sample iff hash land (rate-1) = 0 *)
  ftree : int array;
  ffen_cap : int;
  mutable ftime : int;
  (* weighted histogram and scalars *)
  cutoffs : int array;
  counts : float array;  (* one overflow bucket past the cutoffs *)
  (* float accumulators live in an unboxed array: mutable float fields in
     this mixed record would box on every store, once per access *)
  facc : float array;  (* 0 = weighted sum of log2 (distance+1);
                          1 = total finite weight; 2 = estimated cold *)
  mutable accesses : int;  (* exact: every access is observed *)
  mutable rate_doublings : int;
  mutable compactions : int;
}

let create ?(block_bytes = 32) ?(near_slots = 4096) ?(capacity = 1024) ~cutoffs () =
  if block_bytes <= 0 || block_bytes land (block_bytes - 1) <> 0 then
    invalid_arg "Sampled_reuse.create: block_bytes must be a positive power of two";
  if near_slots < 16 then invalid_arg "Sampled_reuse.create: near_slots must be at least 16";
  if capacity < 16 then invalid_arg "Sampled_reuse.create: capacity must be at least 16";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2) in
  let nsize = ceil_pow2 near_slots 16 in
  let fcap = ceil_pow2 capacity 16 in
  let ftsize = 2 * fcap in
  {
    block_shift = log2 block_bytes 0;
    nsize;
    nkeys = Array.make nsize (-1);
    npos = Array.make nsize 0;
    ntree = Array.make ((4 * nsize) + 1) 0;
    nfen_cap = 4 * nsize;
    ntime = 0;
    nresident = 0;
    fcap;
    ftsize;
    fkeys = Array.make ftsize (-1);
    fpos = Array.make ftsize 0;
    fnear = Array.make ftsize 0;
    fresident = 0;
    rate = 1;
    ftree = Array.make ((4 * fcap) + 1) 0;
    ffen_cap = 4 * fcap;
    ftime = 0;
    cutoffs;
    counts = Array.make (Array.length cutoffs + 1) 0.0;
    facc = Array.make 3 0.0;
    accesses = 0;
    rate_doublings = 0;
    compactions = 0;
  }

(* Fenwick primitives over a caller-supplied tree. *)
let fen_add tree cap i delta =
  let i = ref i in
  while !i <= cap do
    tree.(!i) <- tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let fen_prefix tree cap i =
  let acc = ref 0 and i = ref (min i cap) in
  while !i > 0 do
    acc := !acc + tree.(!i);
    i := !i - (!i land - !i)
  done;
  !acc

(* [weight] arrives as an int (the sampling rate): a float parameter
   would be boxed at every non-inlined call, and this runs per access. *)
let record t d ~weight =
  let cutoffs = t.cutoffs in
  let n = Array.length cutoffs in
  let b = ref 0 in
  while !b < n && d > Array.unsafe_get cutoffs !b do
    incr b
  done;
  let w = float_of_int weight in
  t.counts.(!b) <- t.counts.(!b) +. w;
  t.facc.(0) <- t.facc.(0) +. (w *. (log (float_of_int (d + 1)) /. log 2.0));
  t.facc.(1) <- t.facc.(1) +. w

(* Renumber live positions 1..n in order and rebuild a Fenwick tree.
   No sorting (and no allocation): each live position's mark is still in
   the tree, so its new position is its rank — [prefix pos], 1-based
   because its own mark is included. *)
let compact_positions ~keys ~pos ~tree ~cap ~size ~live:_ =
  let n = ref 0 in
  for i = 0 to size - 1 do
    if Array.unsafe_get keys i >= 0 then begin
      pos.(i) <- fen_prefix tree cap pos.(i);
      incr n
    end
  done;
  Array.fill tree 0 (cap + 1) 0;
  for i = 0 to size - 1 do
    if Array.unsafe_get keys i >= 0 then fen_add tree cap pos.(i) 1
  done;
  !n

let ncompact t =
  t.compactions <- t.compactions + 1;
  (* The far table anchors each entry to the near clock; renumber those
     anchors with the old tree before it is rebuilt.  An anchor whose
     mark was evicted maps to the rank of the preceding live mark, which
     leaves every marks-in-interval count intact. *)
  for i = 0 to t.ftsize - 1 do
    if Array.unsafe_get t.fkeys i >= 0 then
      t.fnear.(i) <- fen_prefix t.ntree t.nfen_cap t.fnear.(i)
  done;
  t.ntime <-
    compact_positions ~keys:t.nkeys ~pos:t.npos ~tree:t.ntree ~cap:t.nfen_cap ~size:t.nsize
      ~live:t.nresident

let fcompact t =
  t.compactions <- t.compactions + 1;
  t.ftime <-
    compact_positions ~keys:t.fkeys ~pos:t.fpos ~tree:t.ftree ~cap:t.ffen_cap ~size:t.ftsize
      ~live:t.fresident

(* Far-table linear probing; load factor stays at or below 1/2. *)
let rec fprobe t key i =
  let k = Array.unsafe_get t.fkeys i in
  if k = key || k = -1 then i else fprobe t key ((i + 1) land (t.ftsize - 1))

let[@inline] fslot t h key = fprobe t key (h land (t.ftsize - 1))

(* Double the sampling rate until the sampled set fits strictly under
   capacity, dropping blocks that fail the new mask and rebuilding the
   probe sequence without them. *)
let rec tighten t =
  t.rate <- t.rate * 2;
  t.rate_doublings <- t.rate_doublings + 1;
  let mask = t.rate - 1 in
  let keys' = Array.make t.fresident 0
  and pos' = Array.make t.fresident 0
  and near' = Array.make t.fresident 0 in
  let n = ref 0 in
  for i = 0 to t.ftsize - 1 do
    let k = Array.unsafe_get t.fkeys i in
    if k >= 0 then begin
      if Cardinality.hash k land mask = 0 then begin
        keys'.(!n) <- k;
        pos'.(!n) <- t.fpos.(i);
        near'.(!n) <- t.fnear.(i);
        incr n
      end
      else fen_add t.ftree t.ffen_cap t.fpos.(i) (-1)
    end
  done;
  Array.fill t.fkeys 0 t.ftsize (-1);
  t.fresident <- !n;
  for j = 0 to !n - 1 do
    let i = fslot t (Cardinality.hash keys'.(j)) keys'.(j) in
    t.fkeys.(i) <- keys'.(j);
    t.fpos.(i) <- pos'.(j);
    t.fnear.(i) <- near'.(j)
  done;
  if t.fresident >= t.fcap then tighten t

let access t addr =
  t.accesses <- t.accesses + 1;
  let block = addr lsr t.block_shift in
  let h = Cardinality.hash block in
  (* near side: every block *)
  if t.ntime >= t.nfen_cap then ncompact t;
  t.ntime <- t.ntime + 1;
  let ni = h land (t.nsize - 1) in
  let near_hit = Array.unsafe_get t.nkeys ni = block in
  if near_hit then begin
    let p = Array.unsafe_get t.npos ni in
    let marks =
      fen_prefix t.ntree t.nfen_cap (t.ntime - 1) - fen_prefix t.ntree t.nfen_cap p
    in
    (* Occupancy inversion: [marks] counts the intervening distinct
       blocks still resident, which undercounts the true distance d —
       later blocks collide earlier ones out, so E[marks] = n(1-e^-d/n).
       Inverting debiases distances comparable to the table size; for
       marks << n it reduces to d = marks.  (All-float locals: unboxed,
       so this stays allocation-free.) *)
    let n = float_of_int t.nsize in
    let d =
      int_of_float (Float.round (-.n *. Float.log1p (-.(float_of_int marks /. n))))
    in
    record t d ~weight:1;
    fen_add t.ntree t.nfen_cap p (-1)
  end
  else begin
    let old = Array.unsafe_get t.nkeys ni in
    if old >= 0 then fen_add t.ntree t.nfen_cap (Array.unsafe_get t.npos ni) (-1)
    else t.nresident <- t.nresident + 1;
    Array.unsafe_set t.nkeys ni block
  end;
  fen_add t.ntree t.nfen_cap t.ntime 1;
  Array.unsafe_set t.npos ni t.ntime;
  (* far side: sampled blocks only *)
  if h land (t.rate - 1) = 0 then begin
    if t.ftime >= t.ffen_cap then fcompact t;
    t.ftime <- t.ftime + 1;
    let i = fslot t h block in
    if Array.unsafe_get t.fkeys i = block then begin
      let p = Array.unsafe_get t.fpos i in
      if not near_hit then begin
        (* Two estimates of the same distance, by expected variance:
           - far clock: sampled intervening blocks times the rate —
             unbiased at any range, noise ~ sqrt(d * rate);
           - near clock + occupancy inversion: intervening blocks still
             near-resident, noise ~ sqrt(n * f / (1-f)) for coverage
             f — much tighter while the near table is not saturated.
           Pick whichever is tighter; at rate 1 the far clock is exact. *)
        let fmarks =
          fen_prefix t.ftree t.ffen_cap (t.ftime - 1) - fen_prefix t.ftree t.ffen_cap p
        in
        let d_far = fmarks * t.rate in
        let nmarks =
          fen_prefix t.ntree t.nfen_cap (t.ntime - 1)
          - fen_prefix t.ntree t.nfen_cap (Array.unsafe_get t.fnear i)
        in
        let n = float_of_int t.nsize in
        let f = float_of_int nmarks /. n in
        let var_occ = n *. f /. Float.max (1.0 -. f) 0.02 in
        let var_far = float_of_int d_far *. float_of_int (t.rate - 1) in
        let d =
          (* past 98% coverage the inversion is numerically wild — the
             far clock takes over well before that in practice *)
          if f > 0.98 || var_far <= var_occ then d_far
          else int_of_float (Float.round (-.n *. Float.log1p (-.f)))
        in
        record t d ~weight:t.rate
      end;
      fen_add t.ftree t.ffen_cap p (-1)
    end
    else begin
      (* masks are nested, so a miss is a true first access — which also
         means the near side cannot have hit *)
      Array.unsafe_set t.fkeys i block;
      t.fresident <- t.fresident + 1;
      t.facc.(2) <- t.facc.(2) +. float_of_int t.rate
    end;
    fen_add t.ftree t.ffen_cap t.ftime 1;
    Array.unsafe_set t.fpos i t.ftime;
    Array.unsafe_set t.fnear i t.ntime;
    if t.fresident >= t.fcap then tighten t
  end

let accesses t = t.accesses
let cold_estimate t = t.facc.(2)
let rate t = t.rate
let tracked t = t.fresident
let near_resident t = t.nresident
let rate_doublings t = t.rate_doublings
let compactions t = t.compactions

let cdf t =
  let denom = float_of_int (max 1 t.accesses) in
  let out = Array.make (Array.length t.cutoffs) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i _ ->
      acc := !acc +. t.counts.(i);
      out.(i) <- !acc /. denom)
    out;
  out

let mean_log2 t = if t.facc.(1) = 0.0 then 0.0 else t.facc.(0) /. t.facc.(1)

let reset t =
  Array.fill t.nkeys 0 t.nsize (-1);
  Array.fill t.npos 0 t.nsize 0;
  Array.fill t.ntree 0 (t.nfen_cap + 1) 0;
  t.ntime <- 0;
  t.nresident <- 0;
  Array.fill t.fkeys 0 t.ftsize (-1);
  Array.fill t.fpos 0 t.ftsize 0;
  Array.fill t.fnear 0 t.ftsize 0;
  Array.fill t.ftree 0 (t.ffen_cap + 1) 0;
  t.fresident <- 0;
  t.rate <- 1;
  t.ftime <- 0;
  Array.fill t.counts 0 (Array.length t.counts) 0.0;
  Array.fill t.facc 0 3 0.0;
  t.accesses <- 0;
  t.rate_doublings <- 0;
  t.compactions <- 0

let state_bytes t =
  (8 * 2 * t.nsize) + (8 * (t.nfen_cap + 1))
  + (8 * 3 * t.ftsize)
  + (8 * (t.ffen_cap + 1))
  + (8 * (Array.length t.counts + Array.length t.cutoffs))
