(* Windowed streaming characterization.

   Feeds the trace through a {!Sketch} in tumbling windows of a fixed
   instruction count: at each boundary the window's 56-characteristic
   vector is read out, folded into an exponentially-decayed running
   vector, optionally emitted as a snapshot, and the sketch is reset in
   place (no allocation) for the next window.  Memory is therefore O(1)
   in trace length plus O(snapshots) for the emitted vectors.

   Chunks that straddle a window boundary are split by restaging into a
   private chunk (the [Sink.sample] idiom), so windowing is a property
   of the instruction stream, not of its chunking — feeding the same
   trace with different chunk capacities yields bit-identical snapshots.

   Phase detection is a pure post-processing step: {!assign} maps a
   vector to its nearest centroid (from an offline [Mica_stats.Kmeans]
   fit), {!timeline} does so per snapshot, and {!purity} scores such an
   online labeling against the offline phase oracle. *)

module Chunk = Mica_trace.Chunk

type snapshot = {
  index : int;  (* window number, 0-based *)
  start_instr : int;
  instructions : int;  (* window length; the final window may be short *)
  vector : float array;  (* this window's extended characteristic vector *)
  decayed : float array;  (* EWMA over windows up to and including this one *)
}

type t = {
  sketch : Sketch.t;
  sketch_sink : Mica_trace.Sink.t;
  window : int;
  snapshot_every : int;
  alpha : float;
  stage : Chunk.t;
  mutable in_window : int;
  mutable windows_done : int;
  mutable total : int;
  mutable decayed : float array;  (* [||] until the first window closes *)
  mutable snapshots_rev : snapshot list;
  mutable finished : bool;
}

let default_window = 65536
let default_alpha = 0.5

let create ?(window = default_window) ?(snapshot_every = 1) ?(alpha = default_alpha)
    ?ppm_order ?plan () =
  if window <= 0 then invalid_arg "Stream.create: window must be positive";
  if snapshot_every <= 0 then invalid_arg "Stream.create: snapshot_every must be positive";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Stream.create: alpha must be in (0, 1]";
  let sketch = Sketch.create ?ppm_order ?plan () in
  {
    sketch;
    sketch_sink = Sketch.sink sketch;
    window;
    snapshot_every;
    alpha;
    stage = Chunk.create ();
    in_window = 0;
    windows_done = 0;
    total = 0;
    decayed = [||];
    snapshots_rev = [];
    finished = false;
  }

let flush_stage t =
  if Chunk.length t.stage > 0 then begin
    t.sketch_sink.Mica_trace.Sink.on_chunk t.stage;
    Chunk.clear t.stage
  end

(* Close the current window: read the vector, fold the EWMA, emit a
   snapshot if due, reset the sketch. *)
let close_window t =
  flush_stage t;
  let v = Sketch.extended_vector t.sketch in
  if Array.length t.decayed = 0 then t.decayed <- Array.copy v
  else
    Array.iteri
      (fun i x -> t.decayed.(i) <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.decayed.(i)))
      v;
  let index = t.windows_done in
  if (index + 1) mod t.snapshot_every = 0 || t.in_window < t.window then
    t.snapshots_rev <-
      {
        index;
        start_instr = t.total - t.in_window;
        instructions = t.in_window;
        vector = v;
        decayed = Array.copy t.decayed;
      }
      :: t.snapshots_rev;
  t.windows_done <- index + 1;
  t.in_window <- 0;
  Sketch.reset t.sketch

let sink t =
  Mica_trace.Sink.make ~name:"stream" (fun c ->
      let len = c.Chunk.len in
      for i = 0 to len - 1 do
        Chunk.append c i t.stage;
        t.in_window <- t.in_window + 1;
        t.total <- t.total + 1;
        if t.in_window = t.window then close_window t
        else if Chunk.is_full t.stage then flush_stage t
      done)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if t.in_window > 0 then close_window t
  end;
  Array.of_list (List.rev t.snapshots_rev)

let windows t = t.windows_done
let instructions t = t.total
let decayed t = if Array.length t.decayed = 0 then None else Some (Array.copy t.decayed)
let state_bytes t = Sketch.state_bytes t.sketch

let run ?window ?snapshot_every ?alpha ?ppm_order ?plan program ~icount =
  let t = create ?window ?snapshot_every ?alpha ?ppm_order ?plan () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  let snapshots = finish t in
  (t, snapshots)

(* ------------------------------------------------------------------ *)
(* Online phase assignment                                             *)

let assign ~centroids v =
  if Array.length centroids = 0 then invalid_arg "Stream.assign: no centroids";
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun ci c ->
      let d = ref 0.0 in
      Array.iteri
        (fun i x ->
          let dx = x -. v.(i) in
          d := !d +. (dx *. dx))
        c;
      if !d < !best_d then begin
        best_d := !d;
        best := ci
      end)
    centroids;
  !best

let timeline ~centroids snapshots =
  Array.map (fun s -> assign ~centroids s.vector) snapshots

(* Cluster purity of an online labeling against an oracle labeling:
   each cluster votes for its majority oracle label; purity is the
   fraction of windows covered by those majorities.  Compared over the
   common prefix, so a trailing partial window on either side is
   ignored. *)
let purity ~labels ~oracle =
  let n = min (Array.length labels) (Array.length oracle) in
  if n = 0 then 0.0
  else begin
    let counts = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      let key = (labels.(i), oracle.(i)) in
      Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0)
    done;
    let best = Hashtbl.create 16 in
    Hashtbl.iter
      (fun (c, _) k ->
        if k > Option.value (Hashtbl.find_opt best c) ~default:0 then Hashtbl.replace best c k)
      counts;
    let covered = Hashtbl.fold (fun _ k acc -> acc + k) best 0 in
    float_of_int covered /. float_of_int n
  end
