(* The sketched characterization analyzer.

   Mirrors [Mica_analysis.Extended] — same 56-characteristic vector, same
   Table II ordering — but every unbounded table is replaced by a
   fixed-memory estimator:

     working sets   -> {!Cardinality} (HLL / linear-counting hybrid)
     stride state   -> {!Bounded.Map} last-address table + {!Bounded.Decay_hist}
     PPM contexts   -> {!Bounded.Map} per-variant context tables
     branch stats   -> direct-mapped per-branch table + {!Cardinality}
     reuse distance -> {!Sampled_reuse} (hash-sampled, rate-adaptive)

   Mix, ILP and register traffic already hold fixed-size state in the
   exact analyzers, so the sketch path reuses them verbatim — those
   characteristics are exact by construction.

   State is fixed at creation from a byte budget ({!plan}); accuracy is
   monotone in the budget (more registers, more slots, more sampled
   blocks).  All placement flows through the one fixed hash
   ({!Cardinality.hash}), so results are bit-deterministic and invariant
   under chunking, seeds and the worker count. *)

module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk
module Mix = Mica_analysis.Mix
module Ilp = Mica_analysis.Ilp
module Regtraffic = Mica_analysis.Regtraffic
module Strides = Mica_analysis.Strides
module Extended = Mica_analysis.Extended

(* ------------------------------------------------------------------ *)
(* Budget plan                                                         *)

type plan = {
  bytes : int;  (* requested total budget *)
  ws_registers : int;  (* per working-set sketch (4 sketches, 1 B/register) *)
  stride_slots : int;  (* per-static-instruction last-address table *)
  ppm_slots : int;  (* per predictor-variant context table (4 tables) *)
  hist_slots : int;  (* PPM local-history table *)
  branch_slots : int;  (* per-branch statistics table *)
  reuse_near_slots : int;  (* near recency table of the reuse estimator *)
  reuse_capacity : int;  (* sampled blocks in the far reuse estimator *)
}

let default_bytes = 1 lsl 20

(* largest power of two <= n, floored at [floor] *)
let pow2_floor ~floor n =
  let rec up c = if c * 2 <= n then up (c * 2) else c in
  if n <= floor then floor else up floor

(* Split the byte budget across the estimator families.  The PPM context
   tables and the reuse estimator dominate exact-path memory, so they get
   three eighths each (the reuse share splits 2:1 between the near
   recency table at 48 B/slot and the far sampled table at 64 B/block).
   Every component is monotone in [bytes], which is what makes accuracy
   monotone in the budget. *)
let plan ?(bytes = default_bytes) () =
  if bytes < 4096 then invalid_arg "Sketch.plan: budget must be at least 4096 bytes";
  {
    bytes;
    ppm_slots = pow2_floor ~floor:16 (bytes * 3 / 8 / 4 / 16);
    reuse_near_slots = pow2_floor ~floor:16 (bytes * 3 / 8 * 2 / 3 / 48);
    reuse_capacity = pow2_floor ~floor:16 (bytes * 3 / 8 / 3 / 64);
    stride_slots = pow2_floor ~floor:16 (bytes / 8 / 16);
    branch_slots = pow2_floor ~floor:16 (bytes / 16 / 40);
    ws_registers = pow2_floor ~floor:16 (bytes / 32 / 4);
    hist_slots = pow2_floor ~floor:16 (bytes / 32 / 16);
  }

(* ------------------------------------------------------------------ *)
(* Strides over bounded state                                          *)

type strides = {
  ll : Bounded.Decay_hist.t;
  gl : Bounded.Decay_hist.t;
  ls : Bounded.Decay_hist.t;
  gs : Bounded.Decay_hist.t;
  last_by_pc : Bounded.Map.t;  (* eviction = forget that static instruction *)
  mutable last_load : int;
  mutable last_store : int;
}

let make_strides ~slots =
  {
    ll = Bounded.Decay_hist.create ~cutoffs:Strides.cutoffs;
    gl = Bounded.Decay_hist.create ~cutoffs:Strides.cutoffs;
    ls = Bounded.Decay_hist.create ~cutoffs:Strides.cutoffs;
    gs = Bounded.Decay_hist.create ~cutoffs:Strides.cutoffs;
    last_by_pc = Bounded.Map.create ~slots;
    last_load = -1;
    last_store = -1;
  }

let op_load = Opcode.to_int Opcode.Load
let op_store = Opcode.to_int Opcode.Store
let op_branch = Opcode.to_int Opcode.Branch

let strides_chunk t (c : Chunk.t) =
  let len = c.Chunk.len in
  let ops = c.Chunk.op and pcs = c.Chunk.pc and addrs = c.Chunk.addr in
  for i = 0 to len - 1 do
    let code = Array.unsafe_get ops i in
    if code = op_load then begin
      let pc = Array.unsafe_get pcs i and addr = Array.unsafe_get addrs i in
      if t.last_load >= 0 then Bounded.Decay_hist.record t.gl (abs (addr - t.last_load));
      t.last_load <- addr;
      let prev = Bounded.Map.find t.last_by_pc pc ~default:(-1) in
      if prev >= 0 then Bounded.Decay_hist.record t.ll (abs (addr - prev));
      Bounded.Map.set t.last_by_pc pc addr
    end
    else if code = op_store then begin
      let pc = Array.unsafe_get pcs i and addr = Array.unsafe_get addrs i in
      if t.last_store >= 0 then Bounded.Decay_hist.record t.gs (abs (addr - t.last_store));
      t.last_store <- addr;
      let prev = Bounded.Map.find t.last_by_pc pc ~default:(-1) in
      if prev >= 0 then Bounded.Decay_hist.record t.ls (abs (addr - prev));
      Bounded.Map.set t.last_by_pc pc addr
    end
  done

let strides_vector t =
  Array.concat
    [
      Bounded.Decay_hist.cdf t.ll;
      Bounded.Decay_hist.cdf t.gl;
      Bounded.Decay_hist.cdf t.ls;
      Bounded.Decay_hist.cdf t.gs;
    ]

let strides_reset t =
  Bounded.Decay_hist.reset t.ll;
  Bounded.Decay_hist.reset t.gl;
  Bounded.Decay_hist.reset t.ls;
  Bounded.Decay_hist.reset t.gs;
  Bounded.Map.reset t.last_by_pc;
  t.last_load <- -1;
  t.last_store <- -1

let strides_bytes t =
  Bounded.Decay_hist.state_bytes t.ll + Bounded.Decay_hist.state_bytes t.gl
  + Bounded.Decay_hist.state_bytes t.ls
  + Bounded.Decay_hist.state_bytes t.gs
  + Bounded.Map.state_bytes t.last_by_pc

(* ------------------------------------------------------------------ *)
(* PPM predictors over bounded context tables                          *)

(* Same prediction logic as [Mica_analysis.Ppm] — same context keys, same
   packed (taken, not-taken) counters, same longest-match fallback — with
   the per-context [Int_map] replaced by a direct-mapped [Bounded.Map].
   An evicted context simply looks "never seen" again, so the predictor
   falls back to a shorter history, which is exactly its cold behavior. *)

type predictor = {
  per_address : bool;
  local_history : bool;
  table : Bounded.Map.t;
  mutable misses : int;
}

type ppm = {
  predictors : predictor array;  (* GAg, PAg, GAs, PAs — Table II order *)
  local_hist : Bounded.Map.t;
  mutable ghist : int;
  order : int;
  mutable branches : int;
}

let taken_one = 1
let not_taken_one = 1 lsl 31
let mask31 = (1 lsl 31) - 1

let make_ppm ~order ~slots ~hist_slots =
  assert (order >= 0 && order <= 16);
  let pred ~per_address ~local_history =
    { per_address; local_history; table = Bounded.Map.create ~slots; misses = 0 }
  in
  {
    predictors =
      [|
        pred ~per_address:false ~local_history:false (* GAg *);
        pred ~per_address:false ~local_history:true (* PAg *);
        pred ~per_address:true ~local_history:false (* GAs *);
        pred ~per_address:true ~local_history:true (* PAs *);
      |];
    local_hist = Bounded.Map.create ~slots:hist_slots;
    ghist = 0;
    order;
    branches = 0;
  }

let[@inline] ppm_key ~pc ~k ~h ~order = (((pc * 17) + k) lsl order) lor (h land ((1 lsl order) - 1))
let[@inline] history_bits h k = h land ((1 lsl k) - 1)

let rec predict_from table ~pc_part ~hist ~order k =
  if k < 0 then true
  else
    let c =
      Bounded.Map.find table (ppm_key ~pc:pc_part ~k ~h:(history_bits hist k) ~order) ~default:0
    in
    if c > 0 then c land mask31 >= c lsr 31
    else predict_from table ~pc_part ~hist ~order (k - 1)

let ppm_observe t ~pc ~outcome =
  t.branches <- t.branches + 1;
  let lhist = Bounded.Map.find t.local_hist pc ~default:0 in
  let delta = if outcome then taken_one else not_taken_one in
  (* indexed loop, not [Array.iter]: a closure here would be allocated on
     every conditional branch of the trace *)
  for pi = 0 to Array.length t.predictors - 1 do
    let p = Array.unsafe_get t.predictors pi in
    let hist = if p.local_history then lhist else t.ghist in
    let pc_part = if p.per_address then pc else 0 in
    if predict_from p.table ~pc_part ~hist ~order:t.order t.order <> outcome then
      p.misses <- p.misses + 1;
    for k = 0 to t.order do
      let h = history_bits hist k in
      Bounded.Map.bump p.table (ppm_key ~pc:pc_part ~k ~h ~order:t.order) delta
    done
  done;
  let bit = Bool.to_int outcome in
  Bounded.Map.set t.local_hist pc (((lhist lsl 1) lor bit) land 0xFFFF);
  t.ghist <- ((t.ghist lsl 1) lor bit) land 0xFFFF

let ppm_vector t =
  Array.map
    (fun p ->
      if t.branches = 0 then 0.0 else float_of_int p.misses /. float_of_int t.branches)
    t.predictors

let ppm_reset t =
  Array.iter
    (fun p ->
      Bounded.Map.reset p.table;
      p.misses <- 0)
    t.predictors;
  Bounded.Map.reset t.local_hist;
  t.ghist <- 0;
  t.branches <- 0

let ppm_bytes t =
  Array.fold_left (fun acc p -> acc + Bounded.Map.state_bytes p.table) 0 t.predictors
  + Bounded.Map.state_bytes t.local_hist

(* ------------------------------------------------------------------ *)
(* Branch statistics over a direct-mapped per-branch table             *)

(* Parallel arrays keyed by the same slot, so one eviction replaces the
   whole per-branch record at once (keeping fields consistent, unlike
   three independent bounded maps would).  The static-branch population
   is tracked by a {!Cardinality} sketch: eviction loses a branch's
   counters but not its membership. *)

type branches = {
  keys : int array;  (* -1 empty *)
  execs : int array;
  taken : int array;
  trans : int array;  (* transitions lsl 1 lor last-outcome bit *)
  mask : int;
  statics : Cardinality.t;
  mutable resident : int;
  mutable evictions : int;
  mutable total : int;
  mutable taken_total : int;
  mutable transitions_total : int;
  mutable with_history : int;
}

let make_branches ~slots ~registers =
  let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2) in
  let cap = ceil_pow2 (max 16 slots) 16 in
  {
    keys = Array.make cap (-1);
    execs = Array.make cap 0;
    taken = Array.make cap 0;
    trans = Array.make cap 0;
    mask = cap - 1;
    statics = Cardinality.create ~registers ();
    resident = 0;
    evictions = 0;
    total = 0;
    taken_total = 0;
    transitions_total = 0;
    with_history = 0;
  }

let branches_observe t ~pc ~outcome =
  t.total <- t.total + 1;
  let b = Bool.to_int outcome in
  t.taken_total <- t.taken_total + b;
  Cardinality.add t.statics pc;
  let i = Cardinality.hash pc land t.mask in
  let k = Array.unsafe_get t.keys i in
  if k = pc then begin
    Array.unsafe_set t.execs i (Array.unsafe_get t.execs i + 1);
    Array.unsafe_set t.taken i (Array.unsafe_get t.taken i + b);
    t.with_history <- t.with_history + 1;
    let tr = Array.unsafe_get t.trans i in
    if tr land 1 <> b then begin
      t.transitions_total <- t.transitions_total + 1;
      Array.unsafe_set t.trans i (((tr lsr 1) + 1) lsl 1 lor b)
    end
    else Array.unsafe_set t.trans i ((tr lsr 1) lsl 1 lor b)
  end
  else begin
    if k = -1 then t.resident <- t.resident + 1 else t.evictions <- t.evictions + 1;
    Array.unsafe_set t.keys i pc;
    Array.unsafe_set t.execs i 1;
    Array.unsafe_set t.taken i b;
    Array.unsafe_set t.trans i b
  end

let branches_vector t =
  let taken_rate = float_of_int t.taken_total /. float_of_int (max 1 t.total) in
  let transition_rate =
    float_of_int t.transitions_total /. float_of_int (max 1 t.with_history)
  in
  let biased = ref 0 in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let rate = float_of_int t.taken.(i) /. float_of_int (max 1 t.execs.(i)) in
        if rate >= 0.9 || rate <= 0.1 then incr biased
      end)
    t.keys;
  let biased_fraction = float_of_int !biased /. float_of_int (max 1 t.resident) in
  [| taken_rate; transition_rate; biased_fraction |]

let branches_static_estimate t = Cardinality.estimate t.statics

let branches_reset t =
  Array.fill t.keys 0 (t.mask + 1) (-1);
  Array.fill t.execs 0 (t.mask + 1) 0;
  Array.fill t.taken 0 (t.mask + 1) 0;
  Array.fill t.trans 0 (t.mask + 1) 0;
  Cardinality.reset t.statics;
  t.resident <- 0;
  t.evictions <- 0;
  t.total <- 0;
  t.taken_total <- 0;
  t.transitions_total <- 0;
  t.with_history <- 0

let branches_bytes t = (4 * 8 * (t.mask + 1)) + Cardinality.state_bytes t.statics

(* ------------------------------------------------------------------ *)
(* The combined analyzer                                               *)

type t = {
  plan : plan;
  mix : Mix.t;
  ilp : Ilp.t;
  regtraffic : Regtraffic.t;
  d_blocks : Cardinality.t;
  d_pages : Cardinality.t;
  i_blocks : Cardinality.t;
  i_pages : Cardinality.t;
  strides : strides;
  ppm : ppm;
  branches : branches;
  reuse : Sampled_reuse.t;
}

let create ?(ppm_order = 8) ?plan:(p = plan ()) () =
  {
    plan = p;
    mix = Mix.create ();
    ilp = Ilp.create ();
    regtraffic = Regtraffic.create ();
    d_blocks = Cardinality.create ~registers:p.ws_registers ();
    d_pages = Cardinality.create ~registers:p.ws_registers ();
    i_blocks = Cardinality.create ~registers:p.ws_registers ();
    i_pages = Cardinality.create ~registers:p.ws_registers ();
    strides = make_strides ~slots:p.stride_slots;
    ppm = make_ppm ~order:ppm_order ~slots:p.ppm_slots ~hist_slots:p.hist_slots;
    branches = make_branches ~slots:p.branch_slots ~registers:(min 1024 p.ws_registers);
    reuse =
      Sampled_reuse.create ~near_slots:p.reuse_near_slots ~capacity:p.reuse_capacity
        ~cutoffs:Extended.reuse_cutoffs ();
  }

let the_plan t = t.plan

let is_mem_code = Array.init Opcode.count (fun i -> Opcode.is_mem (Opcode.of_int i))

let on_chunk t (c : Chunk.t) =
  let len = c.Chunk.len in
  let pcs = c.Chunk.pc and ops = c.Chunk.op and addrs = c.Chunk.addr in
  let taken = c.Chunk.taken in
  (* working set + reuse: one fused pass over the memory stream *)
  for i = 0 to len - 1 do
    let pc = Array.unsafe_get pcs i in
    Cardinality.add t.i_blocks (pc lsr 5);
    Cardinality.add t.i_pages (pc lsr 12);
    if Array.unsafe_get is_mem_code (Array.unsafe_get ops i) then begin
      let addr = Array.unsafe_get addrs i in
      Cardinality.add t.d_blocks (addr lsr 5);
      Cardinality.add t.d_pages (addr lsr 12);
      Sampled_reuse.access t.reuse addr
    end
  done;
  (* branches: PPM predictors + per-branch statistics *)
  for i = 0 to len - 1 do
    if Array.unsafe_get ops i = op_branch then begin
      let pc = Array.unsafe_get pcs i in
      let outcome = Bytes.unsafe_get taken i <> '\000' in
      ppm_observe t.ppm ~pc ~outcome;
      branches_observe t.branches ~pc ~outcome
    end
  done;
  strides_chunk t.strides c

let sink t =
  let exact =
    Mica_trace.Sink.fanout
      [ Mix.sink t.mix; Ilp.sink t.ilp; Regtraffic.sink t.regtraffic ]
  in
  Mica_trace.Sink.make ~name:"sketch" (fun c ->
      Mica_obs.Obs.span "sketch.exact" (fun () -> exact.Mica_trace.Sink.on_chunk c);
      Mica_obs.Obs.span "sketch.bounded" (fun () -> on_chunk t c))

let working_set_vector t =
  [|
    Float.round (Cardinality.estimate t.d_blocks);
    Float.round (Cardinality.estimate t.d_pages);
    Float.round (Cardinality.estimate t.i_blocks);
    Float.round (Cardinality.estimate t.i_pages);
  |]

let vector t =
  let v =
    Array.concat
      [
        Mix.to_vector (Mix.result t.mix);
        Ilp.ipc t.ilp;
        Regtraffic.to_vector (Regtraffic.result t.regtraffic);
        working_set_vector t;
        strides_vector t.strides;
        ppm_vector t.ppm;
      ]
  in
  assert (Array.length v = Mica_analysis.Characteristics.count);
  v

let extended_vector t =
  let accesses = Sampled_reuse.accesses t.reuse in
  let cold =
    if accesses = 0 then 0.0 else Sampled_reuse.cold_estimate t.reuse /. float_of_int accesses
  in
  let v =
    Array.concat
      [
        vector t;
        branches_vector t.branches;
        [| Sampled_reuse.mean_log2 t.reuse; cold |];
        Sampled_reuse.cdf t.reuse;
      ]
  in
  assert (Array.length v = Extended.count);
  v

let instructions t = Ilp.instructions t.ilp

let reset t =
  Mix.reset t.mix;
  Ilp.reset t.ilp;
  Regtraffic.reset t.regtraffic;
  Cardinality.reset t.d_blocks;
  Cardinality.reset t.d_pages;
  Cardinality.reset t.i_blocks;
  Cardinality.reset t.i_pages;
  strides_reset t.strides;
  ppm_reset t.ppm;
  branches_reset t.branches;
  Sampled_reuse.reset t.reuse

let state_bytes t =
  Cardinality.state_bytes t.d_blocks + Cardinality.state_bytes t.d_pages
  + Cardinality.state_bytes t.i_blocks
  + Cardinality.state_bytes t.i_pages
  + strides_bytes t.strides + ppm_bytes t.ppm
  + branches_bytes t.branches
  + Sampled_reuse.state_bytes t.reuse

let static_branch_estimate t = branches_static_estimate t.branches
let reuse_rate t = Sampled_reuse.rate t.reuse

let analyze ?ppm_order ?plan program ~icount =
  let t = create ?ppm_order ?plan () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  t
