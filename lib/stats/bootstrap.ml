module Rng = Mica_util.Rng
module Pool = Mica_util.Pool

type interval = { estimate : float; lo : float; hi : float; replicates : int }

let interval ?(replicates = 1000) ?(confidence = 0.95) ?(pool = Mica_util.Pool.sequential)
    ~rng ~n f =
  if n <= 0 then invalid_arg "Bootstrap.interval: need observations";
  let estimate = f (Array.init n Fun.id) in
  (* sequential pre-split, one generator per replicate, so the replicate
     set is identical at any pool size *)
  let rngs = Array.init replicates (fun _ -> Rng.split rng) in
  let stats =
    Pool.map pool replicates (fun r ->
        let rng = rngs.(r) in
        f (Array.init n (fun _ -> Rng.int rng n)))
  in
  let alpha = (1.0 -. confidence) /. 2.0 in
  {
    estimate;
    lo = Descriptive.percentile stats alpha;
    hi = Descriptive.percentile stats (1.0 -. alpha);
    replicates;
  }

let pair_distance_statistic ~normalized_a ~normalized_b stat sample =
  let n = Array.length sample in
  let da = ref [] and db = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if sample.(i) <> sample.(j) then begin
        da := Distance.euclidean normalized_a.(sample.(i)) normalized_a.(sample.(j)) :: !da;
        db := Distance.euclidean normalized_b.(sample.(i)) normalized_b.(sample.(j)) :: !db
      end
    done
  done;
  stat (Array.of_list !da) (Array.of_list !db)
