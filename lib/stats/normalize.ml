let zscore_params m =
  let _, cols = Matrix.dims m in
  Array.init cols (fun j -> Matrix.column_mean_std m j)

let apply_zscore params x =
  Array.mapi
    (fun j v ->
      let mean, std = params.(j) in
      if std > 0.0 then (v -. mean) /. std else 0.0)
    x

let zscore m =
  let params = zscore_params m in
  Array.map (apply_zscore params) m

let max_scale m =
  let _, cols = Matrix.dims m in
  let maxima =
    Array.init cols (fun j ->
        Array.fold_left (fun acc row -> Float.max acc (Float.abs row.(j))) 0.0 m)
  in
  Array.map
    (fun row -> Array.mapi (fun j v -> if maxima.(j) > 0.0 then v /. maxima.(j) else 0.0) row)
    m

let unit_range m =
  let _, cols = Matrix.dims m in
  let ranges = Array.init cols (fun j -> Matrix.column_min_max m j) in
  Array.map
    (fun row ->
      Array.mapi
        (fun j v ->
          let lo, hi = ranges.(j) in
          if hi > lo then (v -. lo) /. (hi -. lo) else 0.5)
        row)
    m
