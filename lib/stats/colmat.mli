(** Column-major float64 matrices backed by {!Bigarray}.

    The columnar layout is the scale-layer complement of {!Matrix} (an
    array of row arrays): one flat [Bigarray.Array1] holding the columns
    back to back, so column [j] of an [rows x cols] matrix occupies the
    contiguous slice [j * rows, (j + 1) * rows).  Two properties matter:

    - the storage can alias an {!Unix.map_file} mapping, which is how
      {!Mica_core.Dataset_store} opens a 10k-row dataset in O(1) without
      parsing anything; and
    - the blocked distance kernels ({!Distance.condensed_blocked}) stream
      whole column slices through the cache instead of striding across
      row records.

    Element [(i, j)] lives at index [j * rows + i].  All scans iterate
    rows in ascending order, so per-column reductions see values in
    exactly the order the row-major {!Matrix} accessors do — the
    bit-identity contract between the two representations. *)

type array1 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { rows : int; cols : int; data : array1 }

val create : rows:int -> cols:int -> t
(** Fresh zero-filled matrix. *)

val of_array1 : rows:int -> cols:int -> array1 -> t
(** View an existing flat buffer (e.g. an mmap) as a columnar matrix.
    Raises [Invalid_argument] unless the buffer holds exactly
    [rows * cols] elements. *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** No bounds check; kernels only. *)

val of_matrix : Matrix.t -> t
(** Copy a row-major matrix into columnar storage. *)

val to_matrix : t -> Matrix.t
(** Materialize as an array of fresh row arrays. *)

val row : t -> int -> float array
(** Fresh copy of row [i]. *)

val row_into : t -> int -> float array -> unit
(** Fill a preallocated [cols]-length buffer with row [i]. *)

val copy : t -> t
(** Deep copy (detaches from any underlying mapping). *)

val column_mean_std : t -> int -> float * float
(** Per-column mean and standard deviation, summed in ascending row
    order — bit-identical to
    [Descriptive.mean / Descriptive.stddev (Matrix.column m j)] on the
    row-major image of the same matrix. *)

val zscore_params : t -> (float * float) array
(** All columns' [(mean, stddev)] — same contract as
    {!Normalize.zscore_params}. *)

val zscore : t -> t
(** Columnwise (x - mean) / stddev into a fresh matrix; zero-variance
    columns map to 0, like {!Normalize.zscore}. *)

val squared_distance : t -> int -> int -> float
(** Squared Euclidean distance between rows [i] and [j], accumulated in
    ascending column order (the {!Distance.squared_euclidean} order). *)

val distance : t -> int -> int -> float

val distances_from_row : t -> float array -> float array
(** [distances_from_row t q] is the Euclidean distance from the
    [cols]-length query point [q] to every row, in row order — the naive
    linear scan the ANN index is differentially checked against. *)
