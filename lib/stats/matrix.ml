type t = float array array

let make ~rows ~cols v = Array.make_matrix rows cols v

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let copy m = Array.map Array.copy m

let column m j = Array.map (fun row -> row.(j)) m
let row m i = m.(i)

(* No-copy column reductions.  [column] allocates a fresh n-element array
   per access, which the hot per-column callers (normalization parameters,
   PCA centering, kiviat ranges) paid once per column per call; these
   fold the column in place with the exact summation order of
   [Descriptive.mean/stddev/min_max (column m j)], so results stay
   bit-identical while the copies disappear. *)
let column_mean_std m j =
  let rows = Array.length m in
  if rows = 0 then (0.0, 0.0)
  else begin
    let acc = ref 0.0 in
    for i = 0 to rows - 1 do
      acc := !acc +. (Array.unsafe_get m i).(j)
    done;
    let mean = !acc /. float_of_int rows in
    if rows < 2 then (mean, 0.0)
    else begin
      let sq = ref 0.0 in
      for i = 0 to rows - 1 do
        let d = (Array.unsafe_get m i).(j) -. mean in
        sq := !sq +. (d *. d)
      done;
      (mean, sqrt (!sq /. float_of_int rows))
    end
  end

let column_min_max m j =
  let rows = Array.length m in
  assert (rows > 0);
  let lo = ref m.(0).(j) and hi = ref m.(0).(j) in
  for i = 0 to rows - 1 do
    let x = (Array.unsafe_get m i).(j) in
    if x < !lo then lo := x;
    if x > !hi then hi := x
  done;
  (!lo, !hi)

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let map f m = Array.map (Array.map f) m

let select_columns m idx = Array.map (fun row -> Array.map (fun j -> row.(j)) idx) m

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Matrix.mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref 0.0 in
          for k = 0 to ca - 1 do
            acc := !acc +. (a.(i).(k) *. b.(k).(j))
          done;
          !acc))

let covariance m =
  let rows, cols = dims m in
  if rows = 0 then make ~rows:cols ~cols 0.0
  else begin
    (* column means in one row-major sweep — no per-column array, and the
       same per-column summation order as [Descriptive.mean (column m j)] *)
    let means = Array.make cols 0.0 in
    for i = 0 to rows - 1 do
      let r = m.(i) in
      for j = 0 to cols - 1 do
        means.(j) <- means.(j) +. r.(j)
      done
    done;
    let nf = float_of_int rows in
    for j = 0 to cols - 1 do
      means.(j) <- means.(j) /. nf
    done;
    let cov = make ~rows:cols ~cols 0.0 in
    for i = 0 to rows - 1 do
      for a = 0 to cols - 1 do
        let da = m.(i).(a) -. means.(a) in
        for b = a to cols - 1 do
          cov.(a).(b) <- cov.(a).(b) +. (da *. (m.(i).(b) -. means.(b)))
        done
      done
    done;
    let n = float_of_int rows in
    for a = 0 to cols - 1 do
      for b = a to cols - 1 do
        cov.(a).(b) <- cov.(a).(b) /. n;
        cov.(b).(a) <- cov.(a).(b)
      done
    done;
    cov
  end

let correlation_matrix m =
  let cov = covariance m in
  let cols = Array.length cov in
  let out = make ~rows:cols ~cols 0.0 in
  for a = 0 to cols - 1 do
    for b = 0 to cols - 1 do
      if a = b then out.(a).(b) <- 1.0
      else begin
        let denom = sqrt (cov.(a).(a) *. cov.(b).(b)) in
        out.(a).(b) <- (if denom > 0.0 then cov.(a).(b) /. denom else 0.0)
      end
    done
  done;
  out

let pp fmt m =
  Array.iter
    (fun row ->
      Array.iter (fun x -> Format.fprintf fmt "%10.4f " x) row;
      Format.pp_print_newline fmt ())
    m
