(* X-means BIC (Pelleg & Moore, 2000), spherical Gaussian model:

     sigma^2 = inertia / (M * (R - K))           (per-dimension ML variance)
     l       = sum_i R_i log(R_i / R)
               - (R * M / 2) log(2 pi sigma^2)
               - M (R - K) / 2
     BIC     = l - (p / 2) log R,   p = K (M + 1)

   with R observations, M dimensions, K clusters and R_i members in
   cluster i.  Larger is better. *)
let score m (res : Kmeans.result) =
  (* A non-finite inertia would flow through [log] into a silently
     non-finite BIC and corrupt the K selection downstream. *)
  if not (Float.is_finite res.inertia) then
    invalid_arg
      (Printf.sprintf "Bic.score: non-finite inertia %g for k=%d clustering" res.inertia
         res.k);
  let n = Array.length m in
  let dims = if n = 0 then 0 else Array.length m.(0) in
  let k = res.k in
  let nf = float_of_int n and df = float_of_int dims and kf = float_of_int k in
  let variance =
    if n <= k then 1e-9 else Float.max (res.inertia /. (df *. float_of_int (n - k))) 1e-9
  in
  let members = Kmeans.cluster_members res in
  let mixture_term =
    Array.fold_left
      (fun acc mem ->
        let rn = float_of_int (List.length mem) in
        if rn > 0.0 then acc +. (rn *. log (rn /. nf)) else acc)
      0.0 members
  in
  let log_likelihood =
    mixture_term
    -. (nf *. df /. 2.0 *. log (2.0 *. Float.pi *. variance))
    -. (df *. float_of_int (n - k) /. 2.0)
  in
  let free_params = kf *. (df +. 1.0) in
  log_likelihood -. (free_params /. 2.0 *. log nf)

let sweep ?(k_min = 1) ?(k_max = 70) ?(restarts = 3) ?(pool = Mica_util.Pool.sequential)
    ?features ~rng m =
  Mica_obs.Obs.span "cluster.bic" @@ fun () ->
  let n = Array.length m in
  let k_max = min k_max n in
  let k_min = max 1 (min k_min k_max) in
  let count = k_max - k_min + 1 in
  (* sequential pre-split, one generator per K: the swept fits are
     independent tasks and the result is the same at any pool size *)
  let rngs = Array.init count (fun _ -> Mica_util.Rng.split rng) in
  Mica_util.Pool.map pool count (fun i ->
      let k = k_min + i in
      let res = Kmeans.fit ~restarts ~pool ?features ~rng:rngs.(i) ~k m in
      (k, res, score m res))

type preference = Smallest_within | Largest_within | Peak

let choose ?(frac = 0.9) ?(prefer = Smallest_within) sweep_results =
  if Array.length sweep_results = 0 then invalid_arg "Bic.choose: empty sweep";
  let scores = Array.map (fun (_, _, s) -> s) sweep_results in
  let lo, hi = Descriptive.min_max scores in
  let threshold = if hi > lo then lo +. (frac *. (hi -. lo)) else hi in
  let qualifying =
    Array.to_list sweep_results |> List.filter (fun (_, _, s) -> s >= threshold)
  in
  match prefer with
  | Peak ->
    Array.to_list sweep_results
    |> List.fold_left
         (fun best ((_, _, s) as entry) ->
           match best with
           | Some (_, _, bs) when bs >= s -> best
           | Some _ | None -> Some entry)
         None
    |> Option.get
  | Smallest_within -> (
    match qualifying with
    | first :: _ -> first
    | [] -> sweep_results.(Array.length sweep_results - 1))
  | Largest_within -> (
    match List.rev qualifying with
    | last :: _ -> last
    | [] -> sweep_results.(Array.length sweep_results - 1))
