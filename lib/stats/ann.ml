module Rng = Mica_util.Rng
module Obs = Mica_obs.Obs

let m_queries = Obs.counter "ann.queries"
let m_candidates = Obs.counter "ann.candidates"
let m_cells_pruned = Obs.counter "ann.cells_pruned"

type neighbor = { index : int; distance : float }

type cell = {
  centroid : float array;  (* projected space *)
  members : int array;  (* ascending row indices *)
  radius : float;  (* max projected distance centroid -> member *)
}

type t = { data : Colmat.t; pca : Pca.t; dims : int; cells : cell array }

let size t = Colmat.rows t.data
let proj_dims t = t.dims
let cell_count t = Array.length t.cells

let default_seed = 0x6d696361L (* "mica" *)

let build ?proj_dims ?cells ?(seed = default_seed) data =
  Obs.span "stats.ann_build" @@ fun () ->
  let n = Colmat.rows data in
  if n = 0 then invalid_arg "Ann.build: empty dataset";
  let m = Colmat.to_matrix data in
  (* standardize:false keeps the projection an orthonormal map after
     centering — the contraction the query bounds rely on.  Callers
     normalize the space before indexing, exactly as the naive pipeline
     normalizes before Distance.condensed. *)
  let pca = Pca.fit ~standardize:false m in
  let total = Array.length pca.Pca.eigenvalues in
  let dims =
    match proj_dims with Some d -> max 1 (min d total) | None -> min 8 total
  in
  let proj = Pca.transform pca ~dims m in
  let k =
    let default = max 1 (int_of_float (sqrt (float_of_int n))) in
    match cells with Some c -> max 1 (min c n) | None -> min default n
  in
  let rng = Rng.create ~seed in
  let res = Kmeans.fit ~rng ~k proj in
  let members = Kmeans.cluster_members res in
  let cells =
    Array.init res.Kmeans.k (fun c ->
        let centroid = res.Kmeans.centroids.(c) in
        let ms = Array.of_list members.(c) in
        let radius =
          Array.fold_left
            (fun acc i -> Float.max acc (Distance.euclidean centroid proj.(i)))
            0.0 ms
        in
        { centroid; members = ms; radius })
  in
  { data; pca; dims; cells }

let project t q = (Pca.transform t.pca ~dims:t.dims [| q |]).(0)

let compare_neighbor a b =
  match compare a.distance b.distance with 0 -> compare a.index b.index | c -> c

let top_k k ns =
  Array.sort compare_neighbor ns;
  if Array.length ns <= k then ns else Array.sub ns 0 k

let exact_knn data ~k q =
  if k <= 0 then [||]
  else begin
    let d = Colmat.distances_from_row data q in
    top_k k (Array.init (Array.length d) (fun i -> { index = i; distance = d.(i) }))
  end

let exact_range data ~radius q =
  let d = Colmat.distances_from_row data q in
  let out = ref [] in
  for i = Array.length d - 1 downto 0 do
    if d.(i) <= radius then out := { index = i; distance = d.(i) } :: !out
  done;
  let arr = Array.of_list !out in
  Array.sort compare_neighbor arr;
  arr

let knn ?budget t ~k q =
  Obs.span "stats.ann_query" @@ fun () ->
  Obs.incr m_queries;
  if k <= 0 then [||]
  else begin
    let qp = project t q in
    let ncells = Array.length t.cells in
    let cd = Array.map (fun c -> Distance.euclidean qp c.centroid) t.cells in
    let order = Array.init ncells Fun.id in
    Array.sort (fun a b -> match compare cd.(a) cd.(b) with 0 -> compare a b | c -> c) order;
    let budget = match budget with Some b -> max k b | None -> max k (4 * k) in
    (* visiting cells in a budget-independent order and stopping once the
       budget is met makes candidate sets nested across budgets: recall is
       monotone in the budget by construction *)
    let chunks = ref [] and count = ref 0 in
    Array.iter
      (fun ci ->
        if !count < budget then begin
          let ms = t.cells.(ci).members in
          if Array.length ms > 0 then begin
            chunks := ms :: !chunks;
            count := !count + Array.length ms
          end
        end)
      order;
    let candidates = Array.concat (List.rev !chunks) in
    Obs.add m_candidates (float_of_int (Array.length candidates));
    let row = Array.make (Colmat.cols t.data) 0.0 in
    let ns =
      Array.map
        (fun i ->
          Colmat.row_into t.data i row;
          { index = i; distance = Distance.euclidean q row })
        candidates
    in
    top_k k ns
  end

let range t ~radius q =
  Obs.span "stats.ann_query" @@ fun () ->
  Obs.incr m_queries;
  let qp = project t q in
  let out = ref [] in
  let ncand = ref 0 in
  let row = Array.make (Colmat.cols t.data) 0.0 in
  Array.iter
    (fun c ->
      let dc = Distance.euclidean qp c.centroid in
      (* Jacobi eigenvectors are orthonormal only to rounding error, so
         the contraction can be violated by ~1e-12; the slack keeps the
         prune conservative and the results exact *)
      let lb = dc -. c.radius -. (1e-9 *. (1.0 +. dc)) in
      if lb > radius then Obs.incr m_cells_pruned
      else
        Array.iter
          (fun i ->
            incr ncand;
            Colmat.row_into t.data i row;
            let d = Distance.euclidean q row in
            if d <= radius then out := { index = i; distance = d } :: !out)
          c.members)
    t.cells;
  Obs.add m_candidates (float_of_int !ncand);
  let arr = Array.of_list !out in
  Array.sort compare_neighbor arr;
  arr

let recall ~exact ~approx =
  let total = Array.length exact in
  if total = 0 then 1.0
  else begin
    let seen = Hashtbl.create (2 * Array.length approx) in
    Array.iter (fun n -> Hashtbl.replace seen n.index ()) approx;
    let hits =
      Array.fold_left (fun acc n -> if Hashtbl.mem seen n.index then acc + 1 else acc) 0 exact
    in
    float_of_int hits /. float_of_int total
  end
