type t = {
  mean : float array;
  scale : float array;
  components : Matrix.t;
  eigenvalues : float array;
}

(* Cyclic Jacobi eigenvalue algorithm for symmetric matrices. *)
let jacobi_eigen sym =
  let n = Array.length sym in
  let a = Matrix.copy sym in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  let off_diagonal_norm () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = a.(p).(q) in
    if Float.abs apq > 1e-15 then begin
      let theta = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. apq) in
      let t =
        let sign = if theta >= 0.0 then 1.0 else -1.0 in
        sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
      in
      let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
      let s = t *. c in
      for k = 0 to n - 1 do
        let akp = a.(k).(p) and akq = a.(k).(q) in
        a.(k).(p) <- (c *. akp) -. (s *. akq);
        a.(k).(q) <- (s *. akp) +. (c *. akq)
      done;
      for k = 0 to n - 1 do
        let apk = a.(p).(k) and aqk = a.(q).(k) in
        a.(p).(k) <- (c *. apk) -. (s *. aqk);
        a.(q).(k) <- (s *. apk) +. (c *. aqk)
      done;
      for k = 0 to n - 1 do
        let vkp = v.(k).(p) and vkq = v.(k).(q) in
        v.(k).(p) <- (c *. vkp) -. (s *. vkq);
        v.(k).(q) <- (s *. vkp) +. (c *. vkq)
      done
    end
  in
  let max_sweeps = 100 in
  let sweeps = ref 0 in
  while off_diagonal_norm () > 1e-12 && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  let eigenvalues = Array.init n (fun i -> a.(i).(i)) in
  let order = Array.init n Fun.id in
  Array.sort (fun x y -> compare eigenvalues.(y) eigenvalues.(x)) order;
  let sorted_values = Array.map (fun i -> eigenvalues.(i)) order in
  (* eigenvectors as rows: row r = eigenvector of the r-th largest value *)
  let vectors = Array.map (fun i -> Array.init n (fun k -> v.(k).(i))) order in
  (sorted_values, vectors)

let fit ?(standardize = true) m =
  let _, cols = Matrix.dims m in
  let stats = Array.init cols (fun j -> Matrix.column_mean_std m j) in
  let mean = Array.map fst stats in
  let scale =
    if standardize then
      Array.map (fun (_, s) -> if s > 0.0 then s else 1.0) stats
    else Array.make cols 1.0
  in
  let centered =
    Array.map (fun row -> Array.mapi (fun j x -> (x -. mean.(j)) /. scale.(j)) row) m
  in
  let cov = Matrix.covariance centered in
  let eigenvalues, components = jacobi_eigen cov in
  (* numerical noise can produce tiny negative eigenvalues; clamp *)
  let eigenvalues = Array.map (fun l -> if l < 0.0 then 0.0 else l) eigenvalues in
  { mean; scale; components; eigenvalues }

let transform t ?dims m =
  let total = Array.length t.eigenvalues in
  let dims = match dims with Some d -> min d total | None -> total in
  Array.map
    (fun row ->
      let centered = Array.mapi (fun j x -> (x -. t.mean.(j)) /. t.scale.(j)) row in
      Array.init dims (fun d ->
          let comp = t.components.(d) in
          let acc = ref 0.0 in
          Array.iteri (fun j x -> acc := !acc +. (x *. comp.(j))) centered;
          !acc))
    m

let explained_variance_ratio t =
  let total = Descriptive.sum t.eigenvalues in
  if total <= 0.0 then Array.map (fun _ -> 0.0) t.eigenvalues
  else Array.map (fun l -> l /. total) t.eigenvalues

let dims_for_variance t frac =
  let ratios = explained_variance_ratio t in
  let acc = ref 0.0 and d = ref 0 in
  (try
     Array.iteri
       (fun i r ->
         acc := !acc +. r;
         if !acc >= frac then begin
           d := i + 1;
           raise Exit
         end)
       ratios
   with Exit -> ());
  if !d = 0 then Array.length ratios else !d
