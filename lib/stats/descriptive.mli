(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val variance : float array -> float
(** Population variance (divide by n); 0 for fewer than 2 elements. *)

val stddev : float array -> float
(** Population standard deviation. *)

val min_max : float array -> float * float
(** Requires a non-empty array. *)

val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,1], linear interpolation between order
    statistics.  Requires a non-empty array.  Does not modify [xs]. *)

type summary = {
  count : int;  (** finite samples seen (non-finite inputs are dropped) *)
  mean_v : float;  (** 0 when no finite sample *)
  stddev_v : float;  (** population stddev; 0 for fewer than 2 samples *)
  cv : float;
      (** coefficient of variation, [stddev / |mean|]; 0 for a constant
          series, [infinity] for a zero-mean non-constant one *)
}

val summarize : float array -> summary
(** Single-pass (Welford) mean/stddev/CV over the finite elements of the
    array.  The run-to-run noise aggregator behind [mica variance]:
    non-finite samples are dropped rather than propagated, so one corrupt
    measurement degrades a sample instead of poisoning the report. *)

type running
(** Welford accumulator for single-pass mean/variance. *)

val running_create : unit -> running
val running_add : running -> float -> unit
val running_count : running -> int
val running_mean : running -> float
val running_stddev : running -> float
