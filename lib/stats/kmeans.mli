(** K-means clustering with k-means++ seeding.

    Deterministic given the supplied generator; Lloyd iterations run to
    assignment convergence or [max_iters].  Empty clusters are re-seeded
    with the point farthest from its centroid. *)

type result = {
  k : int;
  assignments : int array;  (** cluster id per observation *)
  centroids : Matrix.t;
  inertia : float;  (** sum of squared distances to assigned centroid *)
  iterations : int;
}

val fit :
  ?max_iters:int ->
  ?restarts:int ->
  ?pool:Mica_util.Pool.t ->
  ?features:string array ->
  rng:Mica_util.Rng.t ->
  k:int ->
  Matrix.t ->
  result
(** [fit ~rng ~k m] clusters the rows of [m].  With [restarts] > 1 the best
    inertia over independent seedings wins (earliest restart on a tie);
    each restart draws from its own generator split off [rng] up front, so
    the restarts may run on [pool] with a result independent of the pool
    size.  Requires [1 <= k <= Array.length m] and finite inputs: a
    NaN/Inf anywhere in [m] raises [Invalid_argument] naming the
    observation and the characteristic column (labelled via [features]
    when given) instead of silently corrupting assignments. *)

val cluster_members : result -> int list array
(** Observation indices per cluster, ascending. *)
