(** Pairwise distances between observations.

    Distance matrices over n observations are stored in condensed form: a
    vector of the n(n-1)/2 upper-triangle entries, ordered
    (0,1), (0,2), ..., (0,n-1), (1,2), ...  The condensed form is what the
    distance-correlation fitness of {!Mica_select} consumes. *)

val euclidean : float array -> float array -> float
val squared_euclidean : float array -> float array -> float
val manhattan : float array -> float array -> float

val pair_count : int -> int
(** n(n-1)/2. *)

val pair_index : n:int -> int -> int -> int
(** [pair_index ~n i j] is the condensed index of pair (i, j), [i <> j]. *)

val pairs : n:int -> (int * int) array
(** All (i, j) with i < j, in condensed order. *)

val condensed : ?out:float array -> Matrix.t -> float array
(** Euclidean distances between all row pairs, condensed order.  [?out]
    supplies a preallocated [pair_count n]-length result buffer (returned
    filled); [Invalid_argument] on length mismatch. *)

val condensed_blocked :
  ?pool:Mica_util.Pool.t -> ?block:int -> ?out:float array -> Colmat.t -> float array
(** Cache-tiled condensed distances over columnar storage — bit-identical
    to [condensed (Colmat.to_matrix t)] at any [pool] jobs count (each
    pair accumulates its per-column terms in the same ascending order,
    and workers own disjoint condensed ranges).  With a single-job pool
    the tiling overhead buys nothing, so the kernel falls back to the
    naive row scan over the materialized row-major image — same bits,
    less bookkeeping.  [block] is the tile edge in rows (default 64);
    [?out] as in {!condensed}. *)

val condensed_squared_components : Matrix.t -> Matrix.t
(** Row p of the result holds, for pair p, the per-column squared
    differences — so the squared distance of pair p over a column subset S
    is the sum over S.  This is the precomputation that makes feature-subset
    search cheap. *)

val subset_distances : ?out:float array -> Matrix.t -> int array -> float array
(** [subset_distances components cols]: condensed Euclidean distances using
    only the selected columns, from {!condensed_squared_components} output.
    [?out] supplies a preallocated result buffer of the same length as
    [components]; [Invalid_argument] on mismatch. *)
