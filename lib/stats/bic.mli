(** Bayesian Information Criterion scoring of k-means clusterings.

    The paper selects K by running k-means for K = 1..70 and picking the K
    whose BIC score is "within 90% of the maximum score", citing Sherwood
    et al. (SimPoint).  We use the X-means BIC of Pelleg and Moore: the
    log-likelihood of the data under a spherical Gaussian mixture located
    at the centroids, minus a (p/2) log n penalty on the number of free
    parameters.

    Because BIC scores are typically negative, "within 90%" is implemented
    as a min-max normalized rule: the smallest K whose score reaches
    [min + frac * (max - min)] over the swept K range. *)

val score : Matrix.t -> Kmeans.result -> float
(** BIC of a clustering; larger is better.  Raises [Invalid_argument] on a
    non-finite inertia rather than let NaN corrupt the K selection. *)

val sweep :
  ?k_min:int ->
  ?k_max:int ->
  ?restarts:int ->
  ?pool:Mica_util.Pool.t ->
  ?features:string array ->
  rng:Mica_util.Rng.t ->
  Matrix.t ->
  (int * Kmeans.result * float) array
(** Run k-means for each K in [k_min, k_max] (clamped to the number of
    observations) and return (K, clustering, BIC).  Each K draws from its
    own generator split off [rng] up front and the swept fits fan out over
    [pool]; the result is identical at any pool size. *)

type preference =
  | Smallest_within  (** smallest K reaching the threshold (SimPoint's rule) *)
  | Largest_within  (** largest K still above the threshold *)
  | Peak  (** the K maximizing the BIC score outright *)

val choose :
  ?frac:float ->
  ?prefer:preference ->
  (int * Kmeans.result * float) array ->
  int * Kmeans.result * float
(** Select K from a sweep.  The threshold is [min + frac * (max - min)]
    (default [frac] 0.9); the paper's phrase "a K value within 90% of the
    maximum score" does not pin down which qualifying K to take, so
    [prefer] (default {!Smallest_within}) makes the reading explicit.
    Requires a non-empty sweep. *)
