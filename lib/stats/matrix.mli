(** Dense row-major matrices of floats.

    Rows are observations (benchmarks), columns are variables
    (characteristics) throughout the library. *)

type t = float array array

val make : rows:int -> cols:int -> float -> t
val dims : t -> int * int
val copy : t -> t

val column : t -> int -> float array

val column_mean_std : t -> int -> float * float
(** [(mean, stddev)] of column [j] without materializing it — bit-identical
    to [Descriptive.mean/stddev (column m j)] (empty matrix yields
    [(0., 0.)]). *)

val column_min_max : t -> int -> float * float
(** [(min, max)] of column [j] without materializing it; requires at least
    one row. *)

val row : t -> int -> float array
(** [row] aliases the underlying storage; [column] copies. *)

val transpose : t -> t
val map : (float -> float) -> t -> t

val select_columns : t -> int array -> t
(** [select_columns m idx] keeps columns [idx] in the given order. *)

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val covariance : t -> t
(** Column-covariance matrix (population, divide by n) of an
    observations-by-variables matrix. *)

val correlation_matrix : t -> t
(** Pearson correlation between every pair of columns; unit diagonal.
    Columns with zero variance correlate 0 with everything (and 1 with
    themselves). *)

val pp : Format.formatter -> t -> unit
