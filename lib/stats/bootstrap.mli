(** Bootstrap confidence intervals.

    The paper reports point estimates (a correlation of 0.46, a
    false-positive rate of 41%) without uncertainty.  Because our
    benchmark-pair statistics are built from 122 benchmarks, we resample
    {e benchmarks} (not pairs — pairs sharing a benchmark are dependent)
    and recompute each statistic per replicate: a case-bootstrap over the
    workload set. *)

type interval = {
  estimate : float;  (** statistic on the original sample *)
  lo : float;  (** lower percentile bound *)
  hi : float;  (** upper percentile bound *)
  replicates : int;
}

val interval :
  ?replicates:int ->
  ?confidence:float ->
  ?pool:Mica_util.Pool.t ->
  rng:Mica_util.Rng.t ->
  n:int ->
  (int array -> float) ->
  interval
(** [interval ~rng ~n f] evaluates [f] on the identity sample [|0..n-1|]
    for the point estimate, then on [replicates] (default 1000) resamples
    drawn with replacement, and returns percentile bounds at [confidence]
    (default 0.95).  Each replicate draws from its own generator split off
    [rng] up front and the replicates fan out over [pool]; the interval is
    identical at any pool size. *)

val pair_distance_statistic :
  normalized_a:Matrix.t ->
  normalized_b:Matrix.t ->
  (float array -> float array -> float) ->
  int array ->
  float
(** Helper for statistics over the pairwise distances of two normalized
    observation matrices (e.g. the Figure 1 correlation): given a
    benchmark resample, rebuilds both condensed distance vectors over the
    resampled rows — skipping pairs of identical resampled benchmarks,
    whose distance is trivially 0 in both spaces — and applies the
    two-vector statistic. *)
