(** Approximate-nearest-neighbor index over a columnar dataset.

    At 10k+ observations the O(n) linear scan per query (and the O(n²)
    all-pairs matrix behind classify/coverage/subsetting) stops being
    free.  This index prunes with a two-level geometric structure:

    - rows are projected onto the top [proj_dims] principal components
      ([Pca.fit ~standardize:false], so the projection is an orthonormal
      map after centering and therefore a {e contraction}: projected
      distances never exceed full-space distances);
    - the projected points are clustered into coarse k-means cells, each
      carrying its centroid and covering radius.

    Queries then work cell-at-a-time in the projected space and re-rank
    every surviving candidate with the {e exact} full-space distance:

    - {!range} is exact, not approximate: a cell is skipped only when the
      triangle-inequality lower bound
      [d(q', centroid) - radius > r] proves (via the contraction) that no
      member can lie within [r] of the query.
    - {!knn} is approximate with a tunable candidate [budget]: cells are
      visited in order of projected centroid distance and members
      gathered until the budget is met, so the candidate set — and hence
      recall — is monotone in the budget (shrinking the budget can never
      improve recall).

    Builds are deterministic for a fixed [seed]: k-means runs off a
    generator derived from it, and every tie-break is by ascending
    index. *)

type neighbor = { index : int; distance : float }
(** A dataset row and its exact full-space Euclidean distance to the
    query. *)

type t

val build : ?proj_dims:int -> ?cells:int -> ?seed:int64 -> Colmat.t -> t
(** [build data] indexes the rows of [data].  [proj_dims] is the number
    of leading principal components kept for pruning (default 8, clamped
    to the column count); [cells] the number of coarse k-means cells
    (default [sqrt n], clamped to [1, n]); [seed] fixes the k-means
    generator (default a constant, so two builds over the same data are
    identical).  The index aliases [data] — it must outlive the index.
    Raises [Invalid_argument] on an empty dataset. *)

val size : t -> int
(** Number of indexed rows. *)

val proj_dims : t -> int
val cell_count : t -> int

val knn : ?budget:int -> t -> k:int -> float array -> neighbor array
(** [knn t ~k q] is (approximately) the [k] rows nearest to [q],
    ascending by exact distance (ties by index).  At most [budget]
    candidates are exactly re-ranked (default [max k (4 * k)]; values
    below [k] are raised to [k]).  A budget of [size t] degenerates to
    the exact linear scan. *)

val range : t -> radius:float -> float array -> neighbor array
(** [range t ~radius q]: {e all} rows within [radius] of [q] (exact — see
    the module preamble), ascending by distance, ties by index. *)

val exact_knn : Colmat.t -> k:int -> float array -> neighbor array
(** Index-free linear scan; the differential oracle for {!knn}. *)

val exact_range : Colmat.t -> radius:float -> float array -> neighbor array
(** Index-free linear scan; the differential oracle for {!range}. *)

val recall : exact:neighbor array -> approx:neighbor array -> float
(** Fraction of [exact] indices present in [approx]; 1.0 when [exact] is
    empty. *)
