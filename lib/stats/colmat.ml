type array1 = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : array1 }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Colmat.create: negative dimension";
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; data }

let of_array1 ~rows ~cols data =
  if rows < 0 || cols < 0 then invalid_arg "Colmat.of_array1: negative dimension";
  if Bigarray.Array1.dim data <> rows * cols then
    invalid_arg
      (Printf.sprintf "Colmat.of_array1: buffer holds %d elements, want %d x %d"
         (Bigarray.Array1.dim data) rows cols);
  { rows; cols; data }

let rows t = t.rows
let cols t = t.cols
let dims t = (t.rows, t.cols)

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Colmat.get: out of bounds";
  Bigarray.Array1.unsafe_get t.data ((j * t.rows) + i)

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Colmat.set: out of bounds";
  Bigarray.Array1.unsafe_set t.data ((j * t.rows) + i) v

let unsafe_get t i j = Bigarray.Array1.unsafe_get t.data ((j * t.rows) + i)

let of_matrix m =
  let rows, cols = Matrix.dims m in
  let t = create ~rows ~cols in
  for i = 0 to rows - 1 do
    let r = m.(i) in
    for j = 0 to cols - 1 do
      Bigarray.Array1.unsafe_set t.data ((j * rows) + i) (Array.unsafe_get r j)
    done
  done;
  t

let row_into t i out =
  if i < 0 || i >= t.rows then invalid_arg "Colmat.row_into: row out of bounds";
  if Array.length out <> t.cols then invalid_arg "Colmat.row_into: buffer arity mismatch";
  for j = 0 to t.cols - 1 do
    Array.unsafe_set out j (Bigarray.Array1.unsafe_get t.data ((j * t.rows) + i))
  done

let row t i =
  let out = Array.make t.cols 0.0 in
  row_into t i out;
  out

let to_matrix t = Array.init t.rows (fun i -> row t i)

let copy t =
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (t.rows * t.cols) in
  Bigarray.Array1.blit t.data data;
  { t with data }

(* Same summation order as [Descriptive.mean/stddev (Matrix.column m j)]:
   one ascending-row pass for the mean, a second for the squared
   deviations, n < 2 degenerating to stddev 0. *)
let column_mean_std t j =
  if j < 0 || j >= t.cols then invalid_arg "Colmat.column_mean_std: column out of bounds";
  let n = t.rows in
  if n = 0 then (0.0, 0.0)
  else begin
    let base = j * n in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. Bigarray.Array1.unsafe_get t.data (base + i)
    done;
    let mean = !acc /. float_of_int n in
    if n < 2 then (mean, 0.0)
    else begin
      let sq = ref 0.0 in
      for i = 0 to n - 1 do
        let d = Bigarray.Array1.unsafe_get t.data (base + i) -. mean in
        sq := !sq +. (d *. d)
      done;
      (mean, sqrt (!sq /. float_of_int n))
    end
  end

let zscore_params t = Array.init t.cols (fun j -> column_mean_std t j)

let zscore t =
  let params = zscore_params t in
  let out = create ~rows:t.rows ~cols:t.cols in
  for j = 0 to t.cols - 1 do
    let mean, std = params.(j) in
    let base = j * t.rows in
    if std > 0.0 then
      for i = 0 to t.rows - 1 do
        Bigarray.Array1.unsafe_set out.data (base + i)
          ((Bigarray.Array1.unsafe_get t.data (base + i) -. mean) /. std)
      done
    (* create zero-fills: zero-variance columns stay 0, like Normalize *)
  done;
  out

let squared_distance t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.rows then
    invalid_arg "Colmat.squared_distance: row out of bounds";
  let acc = ref 0.0 in
  for c = 0 to t.cols - 1 do
    let base = c * t.rows in
    let d =
      Bigarray.Array1.unsafe_get t.data (base + i) -. Bigarray.Array1.unsafe_get t.data (base + j)
    in
    acc := !acc +. (d *. d)
  done;
  !acc

let distance t i j = sqrt (squared_distance t i j)

let distances_from_row t q =
  if Array.length q <> t.cols then invalid_arg "Colmat.distances_from_row: arity mismatch";
  let out = Array.make t.rows 0.0 in
  (* column-outer accumulation keeps the memory stream sequential; per
     row the additions still happen in ascending column order, matching
     [Distance.euclidean q (row i)] bit for bit *)
  for c = 0 to t.cols - 1 do
    let base = c * t.rows in
    let qc = Array.unsafe_get q c in
    for i = 0 to t.rows - 1 do
      let d = qc -. Bigarray.Array1.unsafe_get t.data (base + i) in
      Array.unsafe_set out i (Array.unsafe_get out i +. (d *. d))
    done
  done;
  for i = 0 to t.rows - 1 do
    Array.unsafe_set out i (sqrt (Array.unsafe_get out i))
  done;
  out
