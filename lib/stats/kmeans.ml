module Rng = Mica_util.Rng
module Pool = Mica_util.Pool
module Obs = Mica_obs.Obs

(* Bumped on the main domain from the per-restart results, after the pool
   fan-out returns, so readings are identical at any [jobs]. *)
let m_restarts = Obs.counter "kmeans.restarts"
let m_iterations = Obs.counter "kmeans.iterations"

type result = {
  k : int;
  assignments : int array;
  centroids : Matrix.t;
  inertia : float;
  iterations : int;
}

let nearest centroids x =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun c centroid ->
      let d = Distance.squared_euclidean centroid x in
      if d < !best_d then begin
        best_d := d;
        best := c
      end)
    centroids;
  (!best, !best_d)

(* k-means++ seeding: first centroid uniform, then proportional to squared
   distance to the nearest chosen centroid. *)
let seed rng k m =
  let n = Array.length m in
  let centroids = Array.make k m.(0) in
  centroids.(0) <- Array.copy m.(Rng.int rng n);
  let d2 = Array.map (fun x -> Distance.squared_euclidean x centroids.(0)) m in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0.0 d2 in
    let chosen =
      if total <= 0.0 then Rng.int rng n
      else begin
        let r = Rng.float rng total in
        let acc = ref 0.0 and pick = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if r < !acc then begin
                 pick := i;
                 raise Exit
               end)
             d2
         with Exit -> ());
        !pick
      end
    in
    centroids.(c) <- Array.copy m.(chosen);
    Array.iteri
      (fun i x ->
        let d = Distance.squared_euclidean x centroids.(c) in
        if d < d2.(i) then d2.(i) <- d)
      m
  done;
  centroids

let lloyd ~max_iters m centroids =
  let n = Array.length m in
  let k = Array.length centroids in
  let dims = Array.length m.(0) in
  let assignments = Array.make n (-1) in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iters do
    incr iterations;
    changed := false;
    (* assignment step *)
    for i = 0 to n - 1 do
      let c, _ = nearest centroids m.(i) in
      if c <> assignments.(i) then begin
        assignments.(i) <- c;
        changed := true
      end
    done;
    (* update step *)
    let sums = Array.make_matrix k dims 0.0 in
    let counts = Array.make k 0 in
    for i = 0 to n - 1 do
      let c = assignments.(i) in
      counts.(c) <- counts.(c) + 1;
      let row = m.(i) in
      for d = 0 to dims - 1 do
        sums.(c).(d) <- sums.(c).(d) +. row.(d)
      done
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        centroids.(c) <- Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c)
      else begin
        (* re-seed an empty cluster with the point farthest from its centroid *)
        let far = ref 0 and far_d = ref neg_infinity in
        for i = 0 to n - 1 do
          let _, d = nearest centroids m.(i) in
          if d > !far_d then begin
            far_d := d;
            far := i
          end
        done;
        centroids.(c) <- Array.copy m.(!far);
        changed := true
      end
    done
  done;
  let inertia = ref 0.0 in
  for i = 0 to n - 1 do
    let c, d = nearest centroids m.(i) in
    assignments.(i) <- c;
    inertia := !inertia +. d
  done;
  (assignments, !inertia, !iterations)

(* A NaN anywhere poisons clustering silently: every distance comparison
   involving NaN is false, so assignments and inertia become arbitrary
   without any error surfacing.  Reject non-finite inputs upfront, naming
   the offending observation and characteristic column. *)
let check_finite ?features m =
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          if not (Float.is_finite v) then begin
            let column =
              match features with
              | Some fs when j < Array.length fs -> Printf.sprintf "%S" fs.(j)
              | Some _ | None -> Printf.sprintf "#%d" j
            in
            invalid_arg
              (Printf.sprintf
                 "Kmeans.fit: non-finite value %g in observation %d, characteristic %s" v i
                 column)
          end)
        row)
    m

let fit ?(max_iters = 100) ?(restarts = 1) ?(pool = Pool.sequential) ?features ~rng ~k m =
  Obs.span "stats.kmeans" @@ fun () ->
  let n = Array.length m in
  if k < 1 || k > n then invalid_arg "Kmeans.fit: k out of range";
  check_finite ?features m;
  let restarts = max 1 restarts in
  (* one generator per restart, split off sequentially up front: the
     restarts are then independent tasks whose streams — and the winning
     clustering — do not depend on the pool size *)
  let rngs = Array.init restarts (fun _ -> Rng.split rng) in
  let results =
    Pool.map pool restarts (fun r ->
        let centroids = seed rngs.(r) k m in
        let assignments, inertia, iterations = lloyd ~max_iters m centroids in
        (assignments, centroids, inertia, iterations))
  in
  Obs.add m_restarts (float_of_int restarts);
  Array.iter (fun (_, _, _, iters) -> Obs.add m_iterations (float_of_int iters)) results;
  (* ordered reduce: the earliest restart with minimal inertia wins *)
  let best = ref 0 in
  for r = 1 to restarts - 1 do
    let _, _, best_inertia, _ = results.(!best) in
    let _, _, inertia, _ = results.(r) in
    if inertia < best_inertia then best := r
  done;
  let assignments, centroids, inertia, iterations = results.(!best) in
  { k; assignments; centroids; inertia; iterations }

let cluster_members result =
  let members = Array.make result.k [] in
  let n = Array.length result.assignments in
  for i = n - 1 downto 0 do
    let c = result.assignments.(i) in
    members.(c) <- i :: members.(c)
  done;
  members
