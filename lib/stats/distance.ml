module Pool = Mica_util.Pool
module Obs = Mica_obs.Obs

let m_blocked_pairs = Obs.counter "distance.blocked_pairs"

let squared_euclidean a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  !acc

let euclidean a b = sqrt (squared_euclidean a b)

let manhattan a b =
  let n = Array.length a in
  assert (n = Array.length b);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (a.(i) -. b.(i))
  done;
  !acc

let pair_count n = n * (n - 1) / 2

let pair_index ~n i j =
  let i, j = if i < j then (i, j) else (j, i) in
  assert (i <> j && j < n);
  (i * (n - 1)) - (i * (i - 1) / 2) + (j - i - 1)

let pairs ~n =
  let out = Array.make (pair_count n) (0, 0) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out.(!k) <- (i, j);
      incr k
    done
  done;
  out

let check_out ~name ~n out =
  let want = pair_count n in
  match out with
  | None -> Array.make want 0.0
  | Some buf ->
      if Array.length buf <> want then
        invalid_arg
          (Printf.sprintf "%s: output buffer holds %d entries, want %d" name (Array.length buf)
             want);
      buf

let condensed ?out m =
  let n = Array.length m in
  let out = check_out ~name:"Distance.condensed" ~n out in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out.(!k) <- euclidean m.(i) m.(j);
      incr k
    done
  done;
  out

let condensed_squared_components m =
  let n = Array.length m in
  let cols = if n = 0 then 0 else Array.length m.(0) in
  let out = Array.make_matrix (pair_count n) cols 0.0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dst = out.(!k) in
      let a = m.(i) and b = m.(j) in
      for c = 0 to cols - 1 do
        let d = a.(c) -. b.(c) in
        dst.(c) <- d *. d
      done;
      incr k
    done
  done;
  out

let subset_distances ?out components cols =
  match out with
  | None ->
      Array.map
        (fun comp ->
          let acc = ref 0.0 in
          Array.iter (fun c -> acc := !acc +. comp.(c)) cols;
          sqrt !acc)
        components
  | Some buf ->
      let n = Array.length components in
      if Array.length buf <> n then
        invalid_arg
          (Printf.sprintf "Distance.subset_distances: output buffer holds %d entries, want %d"
             (Array.length buf) n);
      for p = 0 to n - 1 do
        let comp = Array.unsafe_get components p in
        let acc = ref 0.0 in
        Array.iter (fun c -> acc := !acc +. comp.(c)) cols;
        Array.unsafe_set buf p (sqrt !acc)
      done;
      buf

(* Cache-tiled condensed distances over columnar storage.

   The naive kernel walks row records, so at 10k x 47 every pair touches
   two scattered 376-byte rows.  Here the row set is cut into [block]-row
   tiles; for a tile pair the column loop is outermost, streaming two
   contiguous column slices while the per-pair accumulators live in a
   block*block scratch that fits in L1/L2.

   Bit-identity with {!condensed}: each pair's accumulator receives its
   per-column contributions in ascending column order with the same
   [d = a -. b; acc +. d *. d] expression, and interleaving updates of
   *different* accumulators cannot change any single accumulator's
   rounding sequence.  Parallel writes are disjoint: worker blocks
   partition the i-rows, and row [i]'s condensed slots
   [kbase i + j, j > i] form a contiguous range owned by exactly one
   worker — so results are independent of [jobs]. *)

let default_block = 64

let condensed_blocked ?(pool = Pool.sequential) ?(block = default_block) ?out t =
  Obs.span "stats.condensed_blocked" @@ fun () ->
  let n = Colmat.rows t in
  let cols = Colmat.cols t in
  let data = t.Colmat.data in
  let out = check_out ~name:"Distance.condensed_blocked" ~n out in
  if block <= 0 then invalid_arg "Distance.condensed_blocked: block must be positive";
  Obs.add m_blocked_pairs (float_of_int (pair_count n));
  if Pool.jobs pool = 1 then
    (* Tiling only pays for itself when the tiles run on separate
       workers; alone, the scratch zeroing and write-back pass make it
       slightly slower than the straight row scan.  Materializing the
       row-major image costs n*cols words once, then each pair streams
       two contiguous rows.  Bit-identity is free: [condensed]
       accumulates per-column terms in the same ascending order as the
       tile kernel. *)
    ignore (condensed ~out (Colmat.to_matrix t) : float array)
  else begin
  let nblocks = (n + block - 1) / block in
  let kbase i = (i * (n - 1)) - (i * (i - 1) / 2) - i - 1 in
  Pool.run_blocks pool nblocks (fun _blk blo bhi ->
      (* per-worker tile scratch: accumulator for pair (i, j) of tile
         (bi, bj) lives at (i - i0) * block + (j - j0) *)
      let scratch = Array.make (block * block) 0.0 in
      for bi = blo to bhi do
        let i0 = bi * block in
        let i1 = min n (i0 + block) in
        for bj = bi to nblocks - 1 do
          let j0 = bj * block in
          let j1 = min n (j0 + block) in
          Array.fill scratch 0 (block * block) 0.0;
          for c = 0 to cols - 1 do
            let base = c * n in
            for i = i0 to i1 - 1 do
              let ai = Bigarray.Array1.unsafe_get data (base + i) in
              let srow = (i - i0) * block in
              let jstart = max (i + 1) j0 in
              for j = jstart to j1 - 1 do
                let d = ai -. Bigarray.Array1.unsafe_get data (base + j) in
                let s = srow + (j - j0) in
                Array.unsafe_set scratch s (Array.unsafe_get scratch s +. (d *. d))
              done
            done
          done;
          for i = i0 to i1 - 1 do
            let srow = (i - i0) * block in
            let kb = kbase i in
            let jstart = max (i + 1) j0 in
            for j = jstart to j1 - 1 do
              Array.unsafe_set out (kb + j) (sqrt (Array.unsafe_get scratch (srow + (j - j0))))
            done
          done
        done
      done)
  end;
  out
