(* Left-to-right, same order as [Array.fold_left ( +. ) 0.0] — but as a
   direct loop so the accumulator stays unboxed (fold_left's closure boxes
   every intermediate float, which dominated the selection kernels'
   allocation profile). *)
let sum xs =
  let acc = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    acc := !acc +. Array.unsafe_get xs i
  done;
  !acc

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  assert (Array.length xs > 0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let lo = max 0 (min (n - 1) lo) and hi = max 0 (min (n - 1) hi) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

(* ---------------- run-to-run variance summary ----------------

   The aggregator behind [mica variance]: single Welford pass over the
   finite samples only (non-finite inputs are dropped, not propagated —
   the cache loader's finite-value guard, applied to measurements), so a
   NaN wall-time from a corrupt metrics snapshot degrades one sample
   instead of poisoning the whole report. *)

type summary = { count : int; mean_v : float; stddev_v : float; cv : float }

let summarize xs =
  let n = ref 0 in
  let m = ref 0.0 in
  let m2 = ref 0.0 in
  Array.iter
    (fun x ->
      if Float.is_finite x then begin
        incr n;
        let delta = x -. !m in
        m := !m +. (delta /. float_of_int !n);
        m2 := !m2 +. (delta *. (x -. !m))
      end)
    xs;
  let count = !n in
  let mean_v = if count = 0 then 0.0 else !m in
  let stddev_v = if count < 2 then 0.0 else sqrt (Float.max 0.0 !m2 /. float_of_int count) in
  let cv =
    if stddev_v = 0.0 then 0.0
    else if mean_v = 0.0 then Float.infinity
    else stddev_v /. Float.abs mean_v
  in
  { count; mean_v; stddev_v; cv }

type running = { mutable n : int; mutable m : float; mutable m2 : float }

let running_create () = { n = 0; m = 0.0; m2 = 0.0 }

let running_add r x =
  r.n <- r.n + 1;
  let delta = x -. r.m in
  r.m <- r.m +. (delta /. float_of_int r.n);
  r.m2 <- r.m2 +. (delta *. (x -. r.m))

let running_count r = r.n
let running_mean r = r.m
let running_stddev r = if r.n < 2 then 0.0 else sqrt (r.m2 /. float_of_int r.n)
