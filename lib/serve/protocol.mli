(** The serve wire protocol: newline-delimited JSON, one request or
    response object per line.

    Floats cross the wire through [Mica_obs.Json], whose writer prints
    [%.17g] (shortest round-trippable form) and whose reader recovers the
    exact bit pattern — so a served characteristic vector is bit-identical
    to the daemon's in-memory vector, and the served-vs-direct identity
    law in [Mica_verify] can compare with [Int64.bits_of_float] equality
    across the encode/decode round trip.

    Every request carries a client-chosen [id]; the matching response
    echoes it, so a client may pipeline requests over one connection and
    match replies out of order (the daemon replies in completion order,
    not submission order). *)

type op =
  | Characterize of { workload : string; estimate : bool }
      (** characterize a registry workload; [estimate = true] permits the
          daemon to answer from the fixed-memory sketch path near the
          deadline (the reply is then flagged [estimated]) *)
  | Distance of { a : string; b : string }  (** Euclidean distance in the warm space *)
  | Classify of { workload : string; threshold : float }
      (** nearest warm neighbour and whether it lies within [threshold] *)
  | Knn of { workload : string; k : int }  (** k nearest warm neighbours *)
  | Health  (** liveness + queue depth; answered inline, never shed *)
  | Metrics  (** Prometheus-text metrics snapshot; answered inline, never shed *)

type request = {
  id : int;
  op : op;
  deadline_ms : float option;
      (** per-request deadline budget; [None] = the daemon's default *)
}

type status =
  | Ok
  | Error  (** the operation failed; [error]/[backtrace] say why *)
  | Overloaded  (** admission queue full — shed, retry after [retry_after_ms] *)
  | Deadline  (** the deadline expired before or during the work *)
  | Quarantined  (** circuit breaker open for this workload *)
  | Draining  (** daemon is shutting down and admits no new work *)

type payload =
  | Vector of { mica : float array; hpc : float array; estimated : bool; cached : bool }
  | Number of float
  | Classification of { nearest : string; distance : float; threshold : float; within : bool }
  | Neighbors of (string * float) list
  | Health_info of {
      queue_depth : int;
      queue_capacity : int;
      draining : bool;
      warm : int;  (** workloads resident in the exact-results table *)
    }
  | Text of string

type response = {
  rid : int;  (** echoes the request [id] *)
  status : status;
  payload : payload option;
  error : string option;
  backtrace : string option;
      (** worker backtrace for [Error] replies (diagnosability; see
          [Pool.failure]) *)
  elapsed_ms : float;  (** admission-to-reply, by the daemon's clock *)
  retry_after_ms : float option;  (** backoff hint on [Overloaded]/[Quarantined] *)
}

val status_name : status -> string
val status_of_name : string -> status option

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val error_response : rid:int -> ?backtrace:string -> ?elapsed_ms:float -> string -> response
(** An [Error] response carrying [msg]. *)
