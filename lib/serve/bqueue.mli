(** A bounded multi-producer single-consumer queue — the daemon's
    admission queue.

    Boundedness is the backpressure mechanism: {!try_push} never blocks
    and never buffers beyond [capacity]; a [false] return is the caller's
    cue to shed the request with an immediate [overloaded] reply, so
    memory stays bounded no matter the arrival rate.

    {!close} flips the queue into drain mode: pushes are refused, but the
    consumer keeps receiving already-admitted items until the queue is
    empty, after which blocking {!pop} returns [None] — the dispatch
    loop's exit signal. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed; never blocks. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed and
    empty ([None]). *)

val try_pop : 'a t -> 'a option
(** [None] when currently empty (closed or not); never blocks. *)

val close : 'a t -> unit
(** Refuse subsequent pushes and wake blocked poppers.  Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int
val capacity : 'a t -> int
