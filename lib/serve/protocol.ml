module Json = Mica_obs.Json

type op =
  | Characterize of { workload : string; estimate : bool }
  | Distance of { a : string; b : string }
  | Classify of { workload : string; threshold : float }
  | Knn of { workload : string; k : int }
  | Health
  | Metrics

type request = { id : int; op : op; deadline_ms : float option }

type status = Ok | Error | Overloaded | Deadline | Quarantined | Draining

type payload =
  | Vector of { mica : float array; hpc : float array; estimated : bool; cached : bool }
  | Number of float
  | Classification of { nearest : string; distance : float; threshold : float; within : bool }
  | Neighbors of (string * float) list
  | Health_info of { queue_depth : int; queue_capacity : int; draining : bool; warm : int }
  | Text of string

type response = {
  rid : int;
  status : status;
  payload : payload option;
  error : string option;
  backtrace : string option;
  elapsed_ms : float;
  retry_after_ms : float option;
}

let status_name = function
  | Ok -> "ok"
  | Error -> "error"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline"
  | Quarantined -> "quarantined"
  | Draining -> "draining"

let status_of_name = function
  | "ok" -> Some Ok
  | "error" -> Some Error
  | "overloaded" -> Some Overloaded
  | "deadline" -> Some Deadline
  | "quarantined" -> Some Quarantined
  | "draining" -> Some Draining
  | _ -> None

(* ---------------- encoding ---------------- *)

let num_list a = Json.List (Array.to_list (Array.map (fun v -> Json.Num v) a))

let encode_op = function
  | Characterize { workload; estimate } ->
    [ ("op", Json.Str "characterize"); ("workload", Json.Str workload);
      ("estimate", Json.Bool estimate) ]
  | Distance { a; b } -> [ ("op", Json.Str "distance"); ("a", Json.Str a); ("b", Json.Str b) ]
  | Classify { workload; threshold } ->
    [ ("op", Json.Str "classify"); ("workload", Json.Str workload);
      ("threshold", Json.Num threshold) ]
  | Knn { workload; k } ->
    [ ("op", Json.Str "knn"); ("workload", Json.Str workload); ("k", Json.Num (float_of_int k)) ]
  | Health -> [ ("op", Json.Str "health") ]
  | Metrics -> [ ("op", Json.Str "metrics") ]

let encode_request r =
  let fields =
    (("id", Json.Num (float_of_int r.id)) :: encode_op r.op)
    @ match r.deadline_ms with None -> [] | Some d -> [ ("deadline_ms", Json.Num d) ]
  in
  Json.to_string (Json.Obj fields)

let encode_payload = function
  | Vector { mica; hpc; estimated; cached } ->
    Json.Obj
      [ ("kind", Json.Str "vector"); ("estimated", Json.Bool estimated);
        ("cached", Json.Bool cached); ("mica", num_list mica); ("hpc", num_list hpc) ]
  | Number v -> Json.Obj [ ("kind", Json.Str "number"); ("value", Json.Num v) ]
  | Classification { nearest; distance; threshold; within } ->
    Json.Obj
      [ ("kind", Json.Str "classification"); ("nearest", Json.Str nearest);
        ("distance", Json.Num distance); ("threshold", Json.Num threshold);
        ("within", Json.Bool within) ]
  | Neighbors items ->
    Json.Obj
      [ ("kind", Json.Str "neighbors");
        ( "items",
          Json.List
            (List.map
               (fun (name, d) ->
                 Json.Obj [ ("name", Json.Str name); ("distance", Json.Num d) ])
               items) ) ]
  | Health_info { queue_depth; queue_capacity; draining; warm } ->
    Json.Obj
      [ ("kind", Json.Str "health"); ("queue_depth", Json.Num (float_of_int queue_depth));
        ("queue_capacity", Json.Num (float_of_int queue_capacity));
        ("draining", Json.Bool draining); ("warm", Json.Num (float_of_int warm)) ]
  | Text s -> Json.Obj [ ("kind", Json.Str "text"); ("text", Json.Str s) ]

let encode_response r =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  let fields =
    [ ("id", Json.Num (float_of_int r.rid)); ("status", Json.Str (status_name r.status)) ]
    @ opt "payload" encode_payload r.payload
    @ opt "error" (fun s -> Json.Str s) r.error
    @ opt "backtrace" (fun s -> Json.Str s) r.backtrace
    @ [ ("elapsed_ms", Json.Num r.elapsed_ms) ]
    @ opt "retry_after_ms" (fun v -> Json.Num v) r.retry_after_ms
  in
  Json.to_string (Json.Obj fields)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let field name j = Option.to_result ~none:(Printf.sprintf "missing field %S" name) (Json.member name j)

let str name j =
  let* v = field name j in
  Option.to_result ~none:(Printf.sprintf "field %S is not a string" name) (Json.to_str v)

let num name j =
  let* v = field name j in
  Option.to_result ~none:(Printf.sprintf "field %S is not a number" name) (Json.to_num v)

let boolean name j =
  let* v = field name j in
  match v with Json.Bool b -> Result.Ok b | _ -> Result.Error (Printf.sprintf "field %S is not a bool" name)

let opt_num name j =
  match Json.member name j with
  | None | Some Json.Null -> Result.Ok None
  | Some v ->
    Option.to_result
      ~none:(Printf.sprintf "field %S is not a number" name)
      (Option.map Option.some (Json.to_num v))

let opt_str name j =
  match Json.member name j with
  | None | Some Json.Null -> Result.Ok None
  | Some v ->
    Option.to_result
      ~none:(Printf.sprintf "field %S is not a string" name)
      (Option.map Option.some (Json.to_str v))

let floats name j =
  let* v = field name j in
  match v with
  | Json.List items ->
    let rec go acc = function
      | [] -> Result.Ok (Array.of_list (List.rev acc))
      | Json.Num x :: rest -> go (x :: acc) rest
      | _ -> Result.Error (Printf.sprintf "field %S holds a non-number" name)
    in
    go [] items
  | _ -> Result.Error (Printf.sprintf "field %S is not an array" name)

let decode_op j =
  let* op = str "op" j in
  match op with
  | "characterize" ->
    let* workload = str "workload" j in
    let estimate = match Json.member "estimate" j with Some (Json.Bool b) -> b | _ -> false in
    Result.Ok (Characterize { workload; estimate })
  | "distance" ->
    let* a = str "a" j in
    let* b = str "b" j in
    Result.Ok (Distance { a; b })
  | "classify" ->
    let* workload = str "workload" j in
    let* threshold = num "threshold" j in
    Result.Ok (Classify { workload; threshold })
  | "knn" ->
    let* workload = str "workload" j in
    let* k = num "k" j in
    Result.Ok (Knn { workload; k = int_of_float k })
  | "health" -> Result.Ok Health
  | "metrics" -> Result.Ok Metrics
  | other -> Result.Error (Printf.sprintf "unknown op %S" other)

let decode_request line =
  let* j = Json.parse line in
  let* id = num "id" j in
  let* op = decode_op j in
  let* deadline_ms = opt_num "deadline_ms" j in
  Result.Ok { id = int_of_float id; op; deadline_ms }

let decode_payload j =
  let* kind = str "kind" j in
  match kind with
  | "vector" ->
    let* estimated = boolean "estimated" j in
    let* cached = boolean "cached" j in
    let* mica = floats "mica" j in
    let* hpc = floats "hpc" j in
    Result.Ok (Vector { mica; hpc; estimated; cached })
  | "number" ->
    let* value = num "value" j in
    Result.Ok (Number value)
  | "classification" ->
    let* nearest = str "nearest" j in
    let* distance = num "distance" j in
    let* threshold = num "threshold" j in
    let* within = boolean "within" j in
    Result.Ok (Classification { nearest; distance; threshold; within })
  | "neighbors" ->
    let* items = field "items" j in
    let* items =
      match items with
      | Json.List l ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* name = str "name" item in
            let* d = num "distance" item in
            Result.Ok ((name, d) :: acc))
          (Result.Ok []) l
        |> Result.map List.rev
      | _ -> Result.Error "field \"items\" is not an array"
    in
    Result.Ok (Neighbors items)
  | "health" ->
    let* queue_depth = num "queue_depth" j in
    let* queue_capacity = num "queue_capacity" j in
    let* draining = boolean "draining" j in
    let* warm = num "warm" j in
    Result.Ok
      (Health_info
         {
           queue_depth = int_of_float queue_depth;
           queue_capacity = int_of_float queue_capacity;
           draining;
           warm = int_of_float warm;
         })
  | "text" ->
    let* text = str "text" j in
    Result.Ok (Text text)
  | other -> Result.Error (Printf.sprintf "unknown payload kind %S" other)

let decode_response line =
  let* j = Json.parse line in
  let* rid = num "id" j in
  let* status_s = str "status" j in
  let* status =
    Option.to_result ~none:(Printf.sprintf "unknown status %S" status_s) (status_of_name status_s)
  in
  let* payload =
    match Json.member "payload" j with
    | None | Some Json.Null -> Result.Ok None
    | Some p -> Result.map Option.some (decode_payload p)
  in
  let* error = opt_str "error" j in
  let* backtrace = opt_str "backtrace" j in
  let* elapsed_ms = num "elapsed_ms" j in
  let* retry_after_ms = opt_num "retry_after_ms" j in
  Result.Ok { rid = int_of_float rid; status; payload; error; backtrace; elapsed_ms; retry_after_ms }

let error_response ~rid ?backtrace ?(elapsed_ms = 0.0) msg =
  {
    rid;
    status = Error;
    payload = None;
    error = Some msg;
    backtrace;
    elapsed_ms;
    retry_after_ms = None;
  }
