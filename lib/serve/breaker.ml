type config = { threshold : int; cooldown : int }

let default_config = { threshold = 3; cooldown = 8 }

type state = Closed | Open | Half_open

type cell = {
  mutable st : state;
  mutable failures : int;  (* consecutive, in Closed *)
  mutable refusals : int;  (* remaining, in Open *)
  mutable probing : bool;  (* a Half_open probe is in flight *)
}

type t = { config : config; cells : (string, cell) Hashtbl.t }

let create config =
  if config.threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if config.cooldown < 1 then invalid_arg "Breaker.create: cooldown must be >= 1";
  { config; cells = Hashtbl.create 32 }

let cell t id =
  match Hashtbl.find_opt t.cells id with
  | Some c -> c
  | None ->
    let c = { st = Closed; failures = 0; refusals = 0; probing = false } in
    Hashtbl.replace t.cells id c;
    c

let state t id = match Hashtbl.find_opt t.cells id with None -> Closed | Some c -> c.st

let admit t id =
  let c = cell t id in
  match c.st with
  | Closed -> `Admit
  | Open ->
    c.refusals <- c.refusals - 1;
    if c.refusals <= 0 then begin
      c.st <- Half_open;
      c.probing <- false
    end;
    `Reject
  | Half_open ->
    if c.probing then `Reject
    else begin
      c.probing <- true;
      `Admit
    end

let record t id ~ok =
  let c = cell t id in
  match c.st with
  | Closed ->
    if ok then c.failures <- 0
    else begin
      c.failures <- c.failures + 1;
      if c.failures >= t.config.threshold then begin
        c.st <- Open;
        c.refusals <- t.config.cooldown
      end
    end
  | Half_open ->
    c.probing <- false;
    if ok then begin
      c.st <- Closed;
      c.failures <- 0
    end
    else begin
      c.st <- Open;
      c.refusals <- t.config.cooldown
    end
  | Open ->
    (* An outcome that raced a trip (e.g. a batch-mate of the tripping
       failure): the breaker already decided; ignore. *)
    ()
