module Pipeline = Mica_core.Pipeline
module Space = Mica_core.Space
module Dataset = Mica_core.Dataset
module Pool = Mica_util.Pool
module Workload = Mica_workloads.Workload
module Registry = Mica_workloads.Registry
module Obs = Mica_obs.Obs

(* Admission / outcome counters (inert when metrics are disabled). *)
let m_requests = Obs.counter "serve.requests"
let m_replies = Obs.counter "serve.replies"
let m_shed = Obs.counter "serve.shed"
let m_degraded = Obs.counter "serve.degraded"
let m_expired = Obs.counter "serve.deadline_expired"
let m_quarantined = Obs.counter "serve.quarantined"
let m_errors = Obs.counter "serve.errors"
let m_hits = Obs.counter "serve.cache_hits"
let m_drains = Obs.counter "serve.drains"
let m_queue_depth = Obs.gauge "serve.queue_depth"
let m_latency = Obs.histogram "serve.latency_s"

type config = {
  icount : int;
  ppm_order : int;
  cache_dir : string option;
  jobs : int;
  retries : int;
  queue_capacity : int;
  default_deadline_ms : float;
  degrade : bool;
  sketch_bytes : int;
  degrade_margin : float;
  breaker : Breaker.config;
  clock : unit -> float;
}

let default_config =
  {
    icount = Pipeline.default_config.Pipeline.icount;
    ppm_order = Pipeline.default_config.Pipeline.ppm_order;
    cache_dir = Pipeline.default_config.Pipeline.cache_dir;
    jobs = Pool.default_jobs ();
    retries = 2;
    queue_capacity = 64;
    default_deadline_ms = 0.0;
    degrade = true;
    sketch_bytes = Mica_sketch.Sketch.default_bytes;
    degrade_margin = 2.0;
    breaker = Breaker.default_config;
    clock = Unix.gettimeofday;
  }

type ticket = {
  req : Protocol.request;
  admitted_at : float;
  deadline : float option;  (* absolute, daemon-clock seconds *)
  reply : Protocol.response -> unit;
}

type t = {
  config : config;
  exact_pipe : Pipeline.config;
  sketch_pipe : Pipeline.config;
  queue : ticket Bqueue.t;
  pool : Pool.t;
  breaker : Breaker.t;
  (* Exact vectors by canonical workload id: warm-start rows plus
     everything computed while serving.  [dirty] is the subset computed
     since startup, merged back into the on-disk cache by [flush].
     Mutated only by the dispatcher; [table_mutex] covers the reads that
     inline health replies make from reader threads. *)
  results : (string, float array * float array) Hashtbl.t;
  dirty : (string, float array * float array) Hashtbl.t;
  table_mutex : Mutex.t;
  mutable space : Space.t option;  (* dispatcher-only *)
  ewma_ms : float Atomic.t;  (* EWMA exact-characterize cost; 0 = unknown *)
  is_draining : bool Atomic.t;
}

let create config =
  let exact_pipe =
    {
      Pipeline.default_config with
      Pipeline.icount = config.icount;
      ppm_order = config.ppm_order;
      cache_dir = config.cache_dir;
      jobs = config.jobs;
      retries = config.retries;
      progress = false;
      run = None;
      sketch = None;
    }
  in
  {
    config;
    exact_pipe;
    sketch_pipe = { exact_pipe with Pipeline.sketch = Some config.sketch_bytes; cache_dir = None };
    queue = Bqueue.create ~capacity:config.queue_capacity;
    pool = Pool.create ~jobs:(max 1 config.jobs);
    breaker = Breaker.create config.breaker;
    results = Hashtbl.create 256;
    dirty = Hashtbl.create 64;
    table_mutex = Mutex.create ();
    space = None;
    ewma_ms = Atomic.make 0.0;
    is_draining = Atomic.make false;
  }

let draining t = Atomic.get t.is_draining
let queue_depth t = Bqueue.length t.queue

let resident t =
  Mutex.lock t.table_mutex;
  let n = Hashtbl.length t.results in
  Mutex.unlock t.table_mutex;
  n

let store_result t id (m, h) ~dirty =
  Mutex.lock t.table_mutex;
  Hashtbl.replace t.results id (m, h);
  if dirty then Hashtbl.replace t.dirty id (m, h);
  Mutex.unlock t.table_mutex

(* ---------------- warm start / flush ---------------- *)

let warm_start t ~workloads =
  List.iter (fun (id, m, h) -> store_result t id (m, h) ~dirty:false)
    (Pipeline.warm_cache t.exact_pipe);
  let missing =
    List.filter (fun w -> not (Hashtbl.mem t.results (Workload.id w))) workloads
  in
  if missing <> [] then begin
    let mica, hpc, _report = Pipeline.datasets_report ~config:t.exact_pipe missing in
    Array.iteri
      (fun i id -> store_result t id (mica.Dataset.data.(i), hpc.Dataset.data.(i)) ~dirty:false)
      mica.Dataset.names
  end;
  (* The query space spans exactly the requested warm set (z-score
     parameters and pairwise distances are population-dependent, so it is
     pinned at warm time, not grown per request). *)
  let rows =
    List.filter_map
      (fun w ->
        let id = Workload.id w in
        Option.map (fun (m, _) -> (id, m)) (Hashtbl.find_opt t.results id))
      workloads
  in
  if List.length rows >= 2 then begin
    let names = Array.of_list (List.map fst rows) in
    let data = Array.of_list (List.map snd rows) in
    let ds = Dataset.create ~names ~features:Mica_analysis.Characteristics.short_names data in
    t.space <- Some (Space.of_dataset ds)
  end;
  resident t

let flush t =
  Mutex.lock t.table_mutex;
  let entries = Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.dirty [] in
  Hashtbl.reset t.dirty;
  Mutex.unlock t.table_mutex;
  Pipeline.flush_cache t.exact_pipe (List.sort compare entries)

(* ---------------- replies ---------------- *)

let elapsed_ms t ticket = (t.config.clock () -. ticket.admitted_at) *. 1000.0

let respond t ticket status ?payload ?error ?backtrace ?retry_after_ms () =
  let elapsed = elapsed_ms t ticket in
  Obs.incr m_replies;
  Obs.observe m_latency (elapsed /. 1000.0);
  ticket.reply
    {
      Protocol.rid = ticket.req.Protocol.id;
      status;
      payload;
      error;
      backtrace;
      elapsed_ms = elapsed;
      retry_after_ms;
    }

let retry_hint t =
  (* Rough time for a queue slot to free up: one EWMA'd characterization
     (or 1ms when unknown) — a hint, not a promise. *)
  Some (Float.max 1.0 (Atomic.get t.ewma_ms))

(* ---------------- admission ---------------- *)

let health_payload t =
  Protocol.Health_info
    {
      queue_depth = queue_depth t;
      queue_capacity = Bqueue.capacity t.queue;
      draining = draining t;
      warm = resident t;
    }

let submit t (req : Protocol.request) ~reply =
  Obs.incr m_requests;
  let now = t.config.clock () in
  let inline status payload =
    Obs.incr m_replies;
    reply
      {
        Protocol.rid = req.Protocol.id;
        status;
        payload = Some payload;
        error = None;
        backtrace = None;
        elapsed_ms = (t.config.clock () -. now) *. 1000.0;
        retry_after_ms = None;
      }
  in
  match req.Protocol.op with
  (* Liveness must stay observable precisely when the daemon is sick, so
     health and metrics bypass the queue and are never shed. *)
  | Protocol.Health -> inline Protocol.Ok (health_payload t)
  | Protocol.Metrics -> inline Protocol.Ok (Protocol.Text (Obs.to_prometheus (Obs.snapshot ())))
  | _ ->
    let refuse status =
      Obs.incr m_shed;
      Obs.incr m_replies;
      reply
        {
          Protocol.rid = req.Protocol.id;
          status;
          payload = None;
          error = None;
          backtrace = None;
          elapsed_ms = 0.0;
          retry_after_ms = retry_hint t;
        }
    in
    if draining t then refuse Protocol.Draining
    else begin
      let deadline =
        match req.Protocol.deadline_ms with
        | Some ms when ms > 0.0 -> Some (now +. (ms /. 1000.0))
        | Some _ -> None
        | None ->
          if t.config.default_deadline_ms > 0.0 then
            Some (now +. (t.config.default_deadline_ms /. 1000.0))
          else None
      in
      let ticket = { req; admitted_at = now; deadline; reply } in
      if Bqueue.try_push t.queue ticket then Obs.set m_queue_depth (float_of_int (queue_depth t))
      else refuse Protocol.Overloaded
    end

(* ---------------- dispatch ---------------- *)

let expired t ticket =
  match ticket.deadline with None -> false | Some d -> t.config.clock () > d

(* Distance in the warm space's normalized coordinates between any two
   resident vectors (warm rows or later-served ones): both are placed
   with the space's frozen z-score parameters. *)
let normalized_distance space va vb =
  let za = Space.place space va and zb = Space.place space vb in
  let acc = ref 0.0 in
  Array.iteri
    (fun i a ->
      let d = a -. zb.(i) in
      acc := !acc +. (d *. d))
    za;
  sqrt !acc

let resident_vector t name =
  match Registry.find name with
  | None -> Error (Printf.sprintf "unknown workload %S" name)
  | Some w -> (
    let id = Workload.id w in
    match Hashtbl.find_opt t.results id with
    | Some (m, _) -> Ok (id, m)
    | None ->
      Error
        (Printf.sprintf "workload %s is not resident; characterize it first, then query" id))

let neighbors space ~id ~vector ~k =
  let ds = space.Space.dataset in
  let ranked =
    Array.to_list
      (Array.mapi (fun i d -> (ds.Dataset.names.(i), d)) (Space.distances_from space vector))
  in
  let ranked = List.filter (fun (name, _) -> name <> id) ranked in
  let ranked = List.stable_sort (fun (_, a) (_, b) -> compare a b) ranked in
  List.filteri (fun i _ -> i < k) ranked

(* Decide a characterize ticket's fate without running anything heavy.
   [`Answer] replies now; [`Heavy] joins the pool batch. *)
let dispatch_characterize t ticket ~workload ~estimate =
  match Registry.find workload with
  | None -> `Answer (Protocol.Error, None, Some (Printf.sprintf "unknown workload %S" workload))
  | Some w -> (
    let id = Workload.id w in
    match Hashtbl.find_opt t.results id with
    | Some (m, h) ->
      Obs.incr m_hits;
      `Answer
        ( Protocol.Ok,
          Some (Protocol.Vector { mica = m; hpc = h; estimated = false; cached = true }),
          None )
    | None -> (
      match Breaker.admit t.breaker id with
      | `Reject ->
        Obs.incr m_quarantined;
        `Quarantined
      | `Admit ->
        let degrade =
          t.config.degrade && estimate
          &&
          match ticket.deadline with
          | None -> false
          | Some d ->
            let ewma = Atomic.get t.ewma_ms in
            ewma > 0.0
            && (d -. t.config.clock ()) *. 1000.0 < t.config.degrade_margin *. ewma
        in
        `Heavy (w, id, degrade)))

let dispatch_light t ticket =
  match ticket.req.Protocol.op with
  | Protocol.Distance { a; b } -> (
    match t.space with
    | None -> (Protocol.Error, None, Some "no warm space: start the daemon with a warm set")
    | Some space -> (
      match (resident_vector t a, resident_vector t b) with
      | Error e, _ | _, Error e -> (Protocol.Error, None, Some e)
      | Ok (_, va), Ok (_, vb) ->
        (Protocol.Ok, Some (Protocol.Number (normalized_distance space va vb)), None)))
  | Protocol.Classify { workload; threshold } -> (
    match t.space with
    | None -> (Protocol.Error, None, Some "no warm space: start the daemon with a warm set")
    | Some space -> (
      match resident_vector t workload with
      | Error e -> (Protocol.Error, None, Some e)
      | Ok (id, v) -> (
        match neighbors space ~id ~vector:v ~k:1 with
        | [] -> (Protocol.Error, None, Some "warm space has no other workload to classify against")
        | (nearest, distance) :: _ ->
          ( Protocol.Ok,
            Some
              (Protocol.Classification
                 { nearest; distance; threshold; within = distance <= threshold }),
            None ))))
  | Protocol.Knn { workload; k } -> (
    match t.space with
    | None -> (Protocol.Error, None, Some "no warm space: start the daemon with a warm set")
    | Some space -> (
      match resident_vector t workload with
      | Error e -> (Protocol.Error, None, Some e)
      | Ok (id, v) ->
        if k < 1 then (Protocol.Error, None, Some "k must be >= 1")
        else (Protocol.Ok, Some (Protocol.Neighbors (neighbors space ~id ~vector:v ~k)), None)))
  | Protocol.Health -> (Protocol.Ok, Some (health_payload t), None)
  | Protocol.Metrics ->
    (Protocol.Ok, Some (Protocol.Text (Obs.to_prometheus (Obs.snapshot ()))), None)
  | Protocol.Characterize _ -> assert false (* routed through dispatch_characterize *)

type work = Done of float array * float array * float  (** vectors + work ms *) | Expired

type heavy = { h_ticket : ticket; h_workload : Workload.t; h_id : string; h_degrade : bool }

let process_heavy t batch =
  let batch = Array.of_list batch in
  let n = Array.length batch in
  if n > 0 then begin
    let outcomes =
      Pool.run_results ~retries:(max 0 t.config.retries) t.pool n (fun i ->
          let h = batch.(i) in
          let cancel =
            Option.map (fun d () -> t.config.clock () > d) h.h_ticket.deadline
          in
          let pipe = if h.h_degrade then t.sketch_pipe else t.exact_pipe in
          let pipe = { pipe with Pipeline.cancel } in
          let t0 = t.config.clock () in
          try
            let m, hv = Pipeline.characterize pipe h.h_workload in
            Done (m, hv, (t.config.clock () -. t0) *. 1000.0)
          with Pipeline.Cancelled -> Expired)
    in
    (* Record and reply sequentially, in batch order, so breaker and EWMA
       trajectories are jobs-invariant. *)
    Array.iteri
      (fun i (o : _ Pool.outcome) ->
        let h = batch.(i) in
        match o.Pool.result with
        | Ok (Done (m, hv, work_ms)) ->
          Breaker.record t.breaker h.h_id ~ok:true;
          if h.h_degrade then begin
            Obs.incr m_degraded;
            respond t h.h_ticket Protocol.Ok
              ~payload:(Protocol.Vector { mica = m; hpc = hv; estimated = true; cached = false })
              ()
          end
          else begin
            store_result t h.h_id (m, hv) ~dirty:true;
            let old = Atomic.get t.ewma_ms in
            Atomic.set t.ewma_ms
              (if old <= 0.0 then work_ms else (0.8 *. old) +. (0.2 *. work_ms));
            respond t h.h_ticket Protocol.Ok
              ~payload:(Protocol.Vector { mica = m; hpc = hv; estimated = false; cached = false })
              ()
          end
        | Ok Expired ->
          (* The deadline passed mid-trace: the analyzer abandoned the
             chunk loop.  Not a workload failure — the breaker only
             counts the workload's own faults. *)
          Obs.incr m_expired;
          respond t h.h_ticket Protocol.Deadline ()
        | Error { Pool.error; backtrace } ->
          Breaker.record t.breaker h.h_id ~ok:false;
          Obs.incr m_errors;
          respond t h.h_ticket Protocol.Error
            ~error:
              (Printf.sprintf "%s failed after %d attempt(s): %s" h.h_id o.Pool.attempts
                 (Printexc.to_string error))
            ~backtrace ())
      outcomes
  end

let handle_ticket t ticket acc =
  if expired t ticket then begin
    (* Swept at dispatch: the deadline passed while queued. *)
    Obs.incr m_expired;
    respond t ticket Protocol.Deadline ();
    acc
  end
  else begin
    match ticket.req.Protocol.op with
    | Protocol.Characterize { workload; estimate } -> (
      match dispatch_characterize t ticket ~workload ~estimate with
      | `Answer (status, payload, error) ->
        if status = Protocol.Error then Obs.incr m_errors;
        respond t ticket status ?payload ?error ();
        acc
      | `Quarantined ->
        respond t ticket Protocol.Quarantined
          ~error:"circuit breaker open: this workload keeps failing"
          ?retry_after_ms:(retry_hint t) ();
        acc
      | `Heavy (w, id, degrade) ->
        { h_ticket = ticket; h_workload = w; h_id = id; h_degrade = degrade } :: acc)
    | _ ->
      let status, payload, error = dispatch_light t ticket in
      if status = Protocol.Error then Obs.incr m_errors;
      respond t ticket status ?payload ?error ();
      acc
  end

let step t first =
  let batch_max = max 1 t.config.jobs in
  let rec build acc consumed =
    if List.length acc >= batch_max then (acc, consumed)
    else begin
      match Bqueue.try_pop t.queue with
      | None -> (acc, consumed)
      | Some ticket -> build (handle_ticket t ticket acc) (consumed + 1)
    end
  in
  let acc = handle_ticket t first [] in
  let heavy, consumed = build acc 1 in
  process_heavy t (List.rev heavy);
  Obs.set m_queue_depth (float_of_int (queue_depth t));
  consumed

let pump t = match Bqueue.try_pop t.queue with None -> 0 | Some first -> step t first

let drain_pump t =
  let rec go () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some first ->
      let (_ : int) = step t first in
      go ()
  in
  go ()

let begin_drain t =
  if not (Atomic.exchange t.is_draining true) then begin
    Obs.incr m_drains;
    Bqueue.close t.queue
  end

(* ---------------- socket front end ---------------- *)

type address = Unix_path of string | Tcp of { host : string; port : int }

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let serve_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let wmutex = Mutex.create () in
  let send resp =
    let line = Protocol.encode_response resp ^ "\n" in
    Mutex.lock wmutex;
    (try write_all fd line with Unix.Unix_error _ | Sys_error _ -> ());
    Mutex.unlock wmutex
  in
  try
    while true do
      let line = input_line ic in
      if String.trim line <> "" then begin
        match Protocol.decode_request line with
        | Ok req -> submit t req ~reply:send
        | Error msg ->
          Obs.incr m_errors;
          send (Protocol.error_response ~rid:(-1) ("parse error: " ^ msg))
      end
    done
  with End_of_file | Sys_error _ | Unix.Unix_error _ -> ()

let listen_and_serve ?(on_ready = fun () -> ()) t address =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listen_fd, cleanup =
    match address with
    | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, fun () -> try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp { host; port } ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      (fd, fun () -> ())
  in
  Unix.listen listen_fd 64;
  let stop = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  let old_term = Sys.signal Sys.sigterm handler in
  let old_int = Sys.signal Sys.sigint handler in
  let dispatcher = Thread.create drain_pump t in
  let conns_mutex = Mutex.create () in
  let conns = ref [] in
  on_ready ();
  while not (Atomic.get stop) do
    match Unix.select [ listen_fd ] [] [] 0.25 with
    | [ _ ], _, _ -> (
      match Unix.accept listen_fd with
      | fd, _ ->
        (* The connection fd stays open until drain: reply closures for
           in-flight tickets hold it, and closing early could redirect a
           late reply to a recycled descriptor. *)
        let th = Thread.create (fun () -> serve_conn t fd) () in
        Mutex.lock conns_mutex;
        conns := (fd, th) :: !conns;
        Mutex.unlock conns_mutex
      | exception Unix.Unix_error _ -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Logs.app (fun f -> f "draining: finishing %d queued request(s)" (queue_depth t));
  begin_drain t;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* In-flight work finishes and every queued ticket is answered before
     any connection closes. *)
  Thread.join dispatcher;
  flush t;
  Mutex.lock conns_mutex;
  let cs = !conns in
  conns := [];
  Mutex.unlock conns_mutex;
  List.iter
    (fun (fd, _) -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    cs;
  List.iter
    (fun (fd, th) ->
      Thread.join th;
      try Unix.close fd with Unix.Unix_error _ -> ())
    cs;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  cleanup ();
  Logs.app (fun f -> f "drained cleanly")
