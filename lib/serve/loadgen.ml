module Rng = Mica_util.Rng
module Json = Mica_obs.Json

type config = {
  address : Server.address;
  rate : float;
  duration : float;
  deadline_ms : float;
  estimate : bool;
  seed : int;
  workloads : string list;
  retries : int;
  backoff_ms : float;
}

let default_config =
  {
    address = Server.Unix_path "/tmp/mica-serve.sock";
    rate = 20.0;
    duration = 3.0;
    deadline_ms = 500.0;
    estimate = true;
    seed = 42;
    workloads = [ "MiBench/sha/large"; "SPEC2000/mcf/ref"; "SPEC2000/swim/ref" ];
    retries = 3;
    backoff_ms = 25.0;
  }

type report = {
  sent : int;
  ok : int;
  estimated : int;
  cached : int;
  shed : int;
  retried : int;
  expired : int;
  failed : int;
  quarantined : int;
  draining : int;
  protocol_errors : int;
  duration_s : float;
  achieved_rate : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  deadline_overruns : int;
}

(* Per-request client state; [first_sent] anchors the latency measurement
   at the original send so retry waiting counts against the service, not
   for it. *)
type pending = {
  workload : string;
  mutable attempts : int;
  mutable first_sent : float;
  mutable terminal : bool;
}

let connect = function
  | Server.Unix_path path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Server.Tcp { host; port } ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    fd

let write_all fd s =
  let len = String.length s in
  let rec go off = if off < len then go (off + Unix.write_substring fd s off (len - off)) in
  go 0

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let run config =
  if config.workloads = [] then invalid_arg "Loadgen.run: workloads must be non-empty";
  if config.rate <= 0.0 then invalid_arg "Loadgen.run: rate must be positive";
  let rng = Rng.create ~seed:(Int64.of_int config.seed) in
  (* Fixed open-loop schedule: seeded exponential interarrivals, workloads
     cycled in order. *)
  let workloads = Array.of_list config.workloads in
  let arrivals =
    let rec go at id acc =
      let at = at +. Rng.exponential rng ~mean:(1.0 /. config.rate) in
      if at > config.duration then List.rev acc
      else go at (id + 1) ((at, id, workloads.((id - 1) mod Array.length workloads)) :: acc)
    in
    go 0.0 1 []
  in
  let total = List.length arrivals in
  let st = Hashtbl.create (2 * total) in
  List.iter
    (fun (_, id, workload) ->
      Hashtbl.replace st id { workload; attempts = 1; first_sent = 0.0; terminal = false })
    arrivals;
  let fd = connect config.address in
  let t0 = Unix.gettimeofday () in
  let now () = Unix.gettimeofday () -. t0 in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  (* (send_at, id, attempt), kept sorted by send time; receiver inserts
     retries. *)
  let sendq = ref (List.map (fun (at, id, _) -> (at, id, 1)) arrivals) in
  let finished = ref false in
  let insert ev =
    let rec ins = function
      | [] -> [ ev ]
      | ((at', _, _) as hd) :: tl ->
        let at, _, _ = ev in
        if at < at' then ev :: hd :: tl else hd :: ins tl
    in
    sendq := ins !sendq;
    Condition.signal cond
  in
  let ok = ref 0
  and estimated = ref 0
  and cached = ref 0
  and shed = ref 0
  and retried = ref 0
  and expired = ref 0
  and failed = ref 0
  and quarantined = ref 0
  and drained = ref 0
  and protocol_errors = ref 0
  and resolved = ref 0
  and overruns = ref 0
  and latencies = ref [] in
  let deadline_ms = if config.deadline_ms > 0.0 then Some config.deadline_ms else None in
  let sender () =
    Mutex.lock mutex;
    while not !finished do
      match !sendq with
      | [] -> Condition.wait cond mutex
      | (at, id, attempt) :: rest ->
        let n = now () in
        if at <= n then begin
          sendq := rest;
          let p = Hashtbl.find st id in
          if attempt = 1 then p.first_sent <- n;
          Mutex.unlock mutex;
          let line =
            Protocol.encode_request
              {
                Protocol.id;
                op = Protocol.Characterize { workload = p.workload; estimate = config.estimate };
                deadline_ms;
              }
            ^ "\n"
          in
          (* A failed write means this id never gets a reply; the hard
             stop accounts it as a protocol error. *)
          (try write_all fd line with Unix.Unix_error _ | Sys_error _ -> ());
          Mutex.lock mutex
        end
        else begin
          Mutex.unlock mutex;
          (* Short quanta so a newly inserted earlier retry is not
             overslept by much. *)
          Unix.sleepf (Float.min (at -. n) 0.02);
          Mutex.lock mutex
        end
    done;
    Mutex.unlock mutex
  in
  let on_response (r : Protocol.response) =
    Mutex.lock mutex;
    (match Hashtbl.find_opt st r.Protocol.rid with
    | None -> incr protocol_errors (* unmatched id, or the daemon's parse-error reply *)
    | Some p when p.terminal -> incr protocol_errors (* duplicate terminal reply *)
    | Some p -> (
      let terminal counter =
        p.terminal <- true;
        incr counter;
        incr resolved;
        (match deadline_ms with
        | Some d when r.Protocol.elapsed_ms > d *. 1.1 -> incr overruns
        | _ -> ());
        latencies := ((now () -. p.first_sent) *. 1000.0) :: !latencies
      in
      match r.Protocol.status with
      | Protocol.Overloaded when p.attempts <= config.retries ->
        incr retried;
        p.attempts <- p.attempts + 1;
        let scale = float_of_int (1 lsl min 6 (p.attempts - 2)) in
        let jitter = 0.5 +. Rng.float rng 1.0 in
        insert (now () +. (config.backoff_ms *. scale *. jitter /. 1000.0), r.Protocol.rid, p.attempts)
      | Protocol.Overloaded -> terminal shed
      | Protocol.Draining -> terminal drained
      | Protocol.Deadline -> terminal expired
      | Protocol.Error -> terminal failed
      | Protocol.Quarantined -> terminal quarantined
      | Protocol.Ok -> (
        match r.Protocol.payload with
        | Some (Protocol.Vector { estimated = true; _ }) -> terminal estimated
        | Some (Protocol.Vector { cached = true; _ }) -> terminal cached
        | _ -> terminal ok)));
    if !resolved >= total then begin
      finished := true;
      Condition.broadcast cond
    end;
    Mutex.unlock mutex
  in
  let sender_t = Thread.create sender () in
  (* Receive until everything resolved or the hard stop: schedule end plus
     a grace of 3 deadlines + 5 s for in-flight work to finish. *)
  let hard_stop =
    config.duration +. (3.0 *. Option.value deadline_ms ~default:1000.0 /. 1000.0) +. 5.0
  in
  let rbuf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let consume_lines () =
    let s = Buffer.contents rbuf in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear rbuf;
        Buffer.add_substring rbuf s start (String.length s - start)
      | Some nl ->
        let line = String.sub s start (nl - start) in
        (if String.trim line <> "" then
           match Protocol.decode_response line with
           | Ok r -> on_response r
           | Error _ ->
             Mutex.lock mutex;
             incr protocol_errors;
             Mutex.unlock mutex);
        go (nl + 1)
    in
    go 0
  in
  (try
     while (not !finished) && now () < hard_stop do
       match Unix.select [ fd ] [] [] 0.25 with
       | [ _ ], _, _ ->
         let n = Unix.read fd chunk 0 (Bytes.length chunk) in
         if n = 0 then raise Exit (* daemon closed the connection *)
         else begin
           Buffer.add_subbytes rbuf chunk 0 n;
           consume_lines ()
         end
       | _ -> ()
     done
   with Exit | Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.lock mutex;
  finished := true;
  Condition.broadcast cond;
  let unresolved = total - !resolved in
  protocol_errors := !protocol_errors + unresolved;
  Mutex.unlock mutex;
  Thread.join sender_t;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let duration_s = now () in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  {
    sent = total;
    ok = !ok;
    estimated = !estimated;
    cached = !cached;
    shed = !shed;
    retried = !retried;
    expired = !expired;
    failed = !failed;
    quarantined = !quarantined;
    draining = !drained;
    protocol_errors = !protocol_errors;
    duration_s;
    achieved_rate = (if duration_s > 0.0 then float_of_int total /. duration_s else 0.0);
    p50_ms = percentile lat 0.50;
    p90_ms = percentile lat 0.90;
    p99_ms = percentile lat 0.99;
    max_ms = (if Array.length lat = 0 then Float.nan else lat.(Array.length lat - 1));
    deadline_overruns = !overruns;
  }

let render r =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "loadgen: %d sent over %.2fs (%.1f req/s achieved)\n" r.sent r.duration_s
       r.achieved_rate);
  Buffer.add_string b
    (Printf.sprintf "  ok %d  estimated %d  cached %d  shed %d (retries %d)\n" r.ok r.estimated
       r.cached r.shed r.retried);
  Buffer.add_string b
    (Printf.sprintf "  deadline %d  error %d  quarantined %d  draining %d  protocol-errors %d\n"
       r.expired r.failed r.quarantined r.draining r.protocol_errors);
  Buffer.add_string b
    (Printf.sprintf "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n" r.p50_ms r.p90_ms
       r.p99_ms r.max_ms);
  Buffer.add_string b (Printf.sprintf "  deadline overruns (>10%%): %d\n" r.deadline_overruns);
  Buffer.contents b

let to_json r =
  Json.Obj
    [
      ("sent", Json.Num (float_of_int r.sent));
      ("ok", Json.Num (float_of_int r.ok));
      ("estimated", Json.Num (float_of_int r.estimated));
      ("cached", Json.Num (float_of_int r.cached));
      ("shed", Json.Num (float_of_int r.shed));
      ("retried", Json.Num (float_of_int r.retried));
      ("expired", Json.Num (float_of_int r.expired));
      ("failed", Json.Num (float_of_int r.failed));
      ("quarantined", Json.Num (float_of_int r.quarantined));
      ("draining", Json.Num (float_of_int r.draining));
      ("protocol_errors", Json.Num (float_of_int r.protocol_errors));
      ("duration_s", Json.Num r.duration_s);
      ("achieved_rate", Json.Num r.achieved_rate);
      ("p50_ms", Json.Num r.p50_ms);
      ("p90_ms", Json.Num r.p90_ms);
      ("p99_ms", Json.Num r.p99_ms);
      ("max_ms", Json.Num r.max_ms);
      ("deadline_overruns", Json.Num (float_of_int r.deadline_overruns));
    ]

let bench_json r =
  let entry name ns = Json.Obj [ ("name", Json.Str name); ("ns_per_run", Json.Num ns) ] in
  let results =
    (if Float.is_finite r.p50_ms then [ entry "serve_loadgen_p50" (r.p50_ms *. 1e6) ] else [])
    @ (if Float.is_finite r.p99_ms then [ entry "serve_loadgen_p99" (r.p99_ms *. 1e6) ] else [])
    @
    if r.achieved_rate > 0.0 then
      [ entry "serve_loadgen_per_request" (1e9 /. r.achieved_rate) ]
    else []
  in
  Json.Obj [ ("results", Json.List results) ]
