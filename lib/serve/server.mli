(** The characterization daemon.

    Two layers, split so robustness logic stays deterministic and
    testable without sockets or wall clocks:

    - a {b deterministic core} — {!create}, {!warm_start}, {!submit},
      {!pump}, {!begin_drain}, {!flush} — in which every time read goes
      through the injectable [config.clock], every admission decision is
      made by {!submit}, and all dispatch (batching, deadline sweeps,
      breaker consultation, degradation choice, result recording) happens
      sequentially inside {!pump}.  Tests drive it with a virtual clock
      and assert exact reply sequences.
    - a {b socket front end} — {!listen_and_serve} — that adds threads
      (acceptor, one reader per connection, one dispatcher running
      {!pump} off the blocking queue) and signals (SIGTERM/SIGINT →
      graceful drain) around the same core.

    Robustness contract (DESIGN.md §15): every admitted or refused
    request gets exactly one reply; the admission queue is bounded, so
    memory is bounded regardless of arrival rate; deadline checks run at
    admission, at dispatch, and cooperatively per trace chunk inside
    [Pipeline.characterize]; near-deadline [characterize] requests whose
    client permits it are answered from the fixed-memory sketch path
    flagged [estimated]; repeatedly failing workloads are quarantined by
    a per-workload circuit breaker; drain finishes in-flight work,
    refuses new work with [draining], then flushes the cache and
    metrics. *)

type config = {
  icount : int;
  ppm_order : int;
  cache_dir : string option;  (** warm-start source and drain-flush target *)
  jobs : int;  (** worker domains; also the dispatch batch size *)
  retries : int;  (** per-request attempts budget beyond the first *)
  queue_capacity : int;  (** admission queue bound *)
  default_deadline_ms : float;  (** applied when a request carries none; [<= 0] = none *)
  degrade : bool;  (** enable sketch-based graceful degradation *)
  sketch_bytes : int;  (** sketch byte budget for degraded answers *)
  degrade_margin : float;
      (** degrade when the remaining budget is below [margin] x the EWMA
          cost of an exact characterization *)
  breaker : Breaker.config;
  clock : unit -> float;  (** seconds; injectable for deterministic tests *)
}

val default_config : config
(** [Pipeline.default_config]'s icount/ppm/cache, [Pool.default_jobs]
    workers, 2 retries, queue capacity 64, no default deadline,
    degradation on with the sketch default budget and margin 2.0,
    [Breaker.default_config], [Unix.gettimeofday]. *)

type t

val create : config -> t

val warm_start : t -> workloads:Mica_workloads.Workload.t list -> int
(** Absorb every complete row of the on-disk characterization cache into
    the in-memory exact-results table, then ensure each given workload is
    resident (characterizing any that are missing, through the cache) and
    build the query space for [distance]/[classify]/[knn] over them.
    Returns the number of resident vectors.  Call before serving. *)

val submit : t -> Protocol.request -> reply:(Protocol.response -> unit) -> unit
(** Admission control.  [health]/[metrics] are answered inline and are
    never shed.  Anything else: when draining → [draining] reply; when
    the queue is full → immediate [overloaded] reply (explicit
    backpressure — the queue never grows past [queue_capacity]);
    otherwise the request is enqueued with its absolute deadline fixed at
    admission time.  Exactly one [reply] happens for every submit, on the
    submitting thread (shed/draining) or the dispatching thread.
    Thread-safe. *)

val pump : t -> int
(** Dispatch one batch: sweep already-expired tickets (replying
    [deadline]), answer light queries (warm-space distance/classify/knn
    and exact-cache hits) inline, consult the breaker per characterize
    ticket ([quarantined] reply when open), run at most [jobs] heavy
    characterizations on the pool — each with a cooperative per-chunk
    deadline check, degraded to the sketch path when the remaining budget
    demands and the client allows — then record outcomes (results table,
    breaker, EWMA) and reply, in batch order.  Returns the number of
    tickets consumed; 0 when the queue was empty.  Not thread-safe with
    itself: it is the dispatcher's loop body. *)

val drain_pump : t -> unit
(** Blocking dispatcher loop: {!pump} driven by the queue's blocking pop;
    returns when the queue is closed and fully drained. *)

val begin_drain : t -> unit
(** Stop admitting: subsequent {!submit}s get [draining] replies and the
    queue is closed, so {!drain_pump} returns once in-flight work
    finishes.  Idempotent. *)

val draining : t -> bool
val queue_depth : t -> int
val resident : t -> int
(** Vectors in the exact-results table. *)

val flush : t -> unit
(** Merge every vector computed since startup into the on-disk cache
    ([Pipeline.flush_cache]); no-op when caching is off.  Call after
    drain. *)

type address = Unix_path of string | Tcp of { host : string; port : int }

val listen_and_serve : ?on_ready:(unit -> unit) -> t -> address -> unit
(** Bind, listen and serve until SIGTERM/SIGINT.  On signal: admission
    flips to [draining], the listener closes, in-flight work finishes and
    its replies are delivered, the cache and (if metrics are enabled) the
    run metrics are flushed, connections close, and the call returns —
    the graceful-drain path the soak test and CI smoke assert.
    [on_ready] runs once the socket is listening. *)
