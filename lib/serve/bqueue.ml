type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    is_closed = false;
  }

let try_push t v =
  Mutex.lock t.mutex;
  let ok = (not t.is_closed) && Queue.length t.items < t.capacity in
  if ok then begin
    Queue.push v t.items;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.mutex;
  ok

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.items && not t.is_closed do
    Condition.wait t.nonempty t.mutex
  done;
  let v = Queue.take_opt t.items in
  Mutex.unlock t.mutex;
  v

let try_pop t =
  Mutex.lock t.mutex;
  let v = Queue.take_opt t.items in
  Mutex.unlock t.mutex;
  v

let close t =
  Mutex.lock t.mutex;
  t.is_closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.is_closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity
