(** Seeded open-loop load generator for the serve daemon.

    Open-loop means the arrival schedule is fixed up front — seeded
    exponential interarrivals at the target rate, workloads cycled from
    the given list — and requests are sent at their scheduled instants
    whether or not earlier replies have come back.  This is the honest
    way to measure an overloaded service: a closed loop would slow its
    own arrivals exactly when the daemon struggles, hiding the overload
    (coordinated omission).

    One pipelined connection; a sender thread walks the schedule while
    the receiver matches replies by id.  [overloaded] replies are retried
    with seeded-jitter exponential backoff up to [retries] times, then
    counted as shed.  Every request must reach {e some} terminal reply;
    any that has none by the hard stop (duration + grace) counts as a
    protocol error, as does any undecodable or unmatched response line —
    the loadgen exits nonzero on protocol errors, which is the CI smoke
    job's "no reply lost" assertion. *)

type config = {
  address : Server.address;
  rate : float;  (** target arrivals per second *)
  duration : float;  (** seconds of scheduled arrivals *)
  deadline_ms : float;  (** per-request deadline sent to the daemon; [<= 0] = none *)
  estimate : bool;  (** permit sketch-degraded answers *)
  seed : int;  (** arrival schedule + backoff jitter *)
  workloads : string list;  (** cycled deterministically; must be non-empty *)
  retries : int;  (** re-sends after [overloaded] before counting shed *)
  backoff_ms : float;  (** base backoff, doubled per retry, jittered *)
}

val default_config : config
(** rate 20/s for 3 s, deadline 500 ms, estimates allowed, seed 42, the
    verify trio of workloads, 3 retries at 25 ms base backoff.  The
    address must still be set. *)

type report = {
  sent : int;  (** distinct scheduled requests *)
  ok : int;  (** exact, freshly computed *)
  estimated : int;  (** sketch-degraded answers *)
  cached : int;  (** answered from the daemon's exact-results table *)
  shed : int;  (** still [overloaded] after the retry budget *)
  retried : int;  (** retry sends performed *)
  expired : int;  (** [deadline] replies *)
  failed : int;  (** [error] replies *)
  quarantined : int;
  draining : int;
  protocol_errors : int;
  duration_s : float;  (** wall time, first send to last terminal reply *)
  achieved_rate : float;
  p50_ms : float;  (** client-observed latency percentiles over replies *)
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  deadline_overruns : int;
      (** terminal replies whose daemon-side [elapsed_ms] exceeded the
          request deadline by more than 10% — the overload contract's
          hard bound, asserted to be 0 by the soak test *)
}

val run : config -> report
(** Connect, replay the schedule, wait for every terminal reply (bounded
    by a grace period), disconnect. *)

val render : report -> string
val to_json : report -> Mica_obs.Json.t

val bench_json : report -> Mica_obs.Json.t
(** The committed-bench-entry shape [mica compare] gates on:
    [{"results": [{"name": "serve_loadgen_p50", "ns_per_run": ...}, ...]}]
    with p50/p99 latency and per-request service time as entries. *)
