(** Per-workload circuit breakers.

    A workload whose characterization keeps failing (a bug in its model,
    or a persistent injected fault) must not be allowed to monopolise the
    worker pool with retry storms: after [threshold] consecutive failures
    its breaker opens and further requests for it are refused immediately
    with a [quarantined] reply.

    The cooldown is counted in {e refused admissions}, not wall time, so
    breaker trajectories are a pure function of the request sequence —
    deterministic at any parallelism and directly assertable in tests.
    After [cooldown] refusals the breaker goes half-open and admits one
    probe: success closes it (failure count reset), failure re-opens it
    for a fresh cooldown.  While the probe is in flight, other requests
    for the workload are still refused.

    Admission decisions and outcome recording are made sequentially by
    the dispatcher (never from worker domains), so no locking is needed
    and results are jobs-invariant. *)

type config = {
  threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown : int;  (** refused admissions before a half-open probe *)
}

val default_config : config
(** 3 failures to trip, 8 refusals to probe. *)

type t

val create : config -> t

type state = Closed | Open | Half_open

val state : t -> string -> state
(** Current state for a workload id (untracked ids are [Closed]). *)

val admit : t -> string -> [ `Admit | `Reject ]
(** Decide admission for a request naming this workload, advancing the
    cooldown/probe bookkeeping. *)

val record : t -> string -> ok:bool -> unit
(** Record the outcome of an admitted request's work. *)
