module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk

let cutoffs = [| 0; 8; 64; 512; 4096 |]

(* Histogram over the cumulative cutoffs plus a "> 4096" bucket. *)
type hist = { counts : int array; mutable total : int }

let make_hist () = { counts = Array.make (Array.length cutoffs + 1) 0; total = 0 }

(* Top-level recursion: nesting this under [record] would allocate a
   closure per recorded stride on the non-flambda compiler. *)
let rec bucket_from s i n =
  if i >= n then n else if s <= cutoffs.(i) then i else bucket_from s (i + 1) n

let record hist stride =
  let b = bucket_from (abs stride) 0 (Array.length cutoffs) in
  hist.counts.(b) <- hist.counts.(b) + 1;
  hist.total <- hist.total + 1

let cdf hist =
  let denom = float_of_int (max 1 hist.total) in
  let out = Array.make (Array.length cutoffs) 0.0 in
  let acc = ref 0 in
  Array.iteri
    (fun i _ ->
      acc := !acc + hist.counts.(i);
      out.(i) <- float_of_int !acc /. denom)
    out;
  out

type result = {
  local_load : float array;
  global_load : float array;
  local_store : float array;
  global_store : float array;
}

type t = {
  ll_hist : hist;
  gl_hist : hist;
  ls_hist : hist;
  gs_hist : hist;
  last_by_pc : Mica_util.Int_map.t;  (* static mem instruction -> last address *)
  mutable last_load : int;  (* -1 if none yet *)
  mutable last_store : int;
}

let create () =
  {
    ll_hist = make_hist ();
    gl_hist = make_hist ();
    ls_hist = make_hist ();
    gs_hist = make_hist ();
    last_by_pc = Mica_util.Int_map.create ~initial:1024 ();
    last_load = -1;
    last_store = -1;
  }

let op_load = Opcode.to_int Opcode.Load
let op_store = Opcode.to_int Opcode.Store

let sink t =
  Mica_trace.Sink.make ~name:"strides" (fun c ->
      let len = c.Chunk.len in
      let ops = c.Chunk.op and pcs = c.Chunk.pc and addrs = c.Chunk.addr in
      for i = 0 to len - 1 do
        let code = Array.unsafe_get ops i in
        (* data addresses are strictly positive, so [-1] marks "not seen" *)
        if code = op_load then begin
          let pc = Array.unsafe_get pcs i and addr = Array.unsafe_get addrs i in
          if t.last_load >= 0 then record t.gl_hist (addr - t.last_load);
          t.last_load <- addr;
          let prev = Mica_util.Int_map.find t.last_by_pc pc ~default:(-1) in
          if prev >= 0 then record t.ll_hist (addr - prev);
          Mica_util.Int_map.set t.last_by_pc pc addr
        end
        else if code = op_store then begin
          let pc = Array.unsafe_get pcs i and addr = Array.unsafe_get addrs i in
          if t.last_store >= 0 then record t.gs_hist (addr - t.last_store);
          t.last_store <- addr;
          let prev = Mica_util.Int_map.find t.last_by_pc pc ~default:(-1) in
          if prev >= 0 then record t.ls_hist (addr - prev);
          Mica_util.Int_map.set t.last_by_pc pc addr
        end
      done)

let result t =
  {
    local_load = cdf t.ll_hist;
    global_load = cdf t.gl_hist;
    local_store = cdf t.ls_hist;
    global_store = cdf t.gs_hist;
  }

let to_vector (r : result) =
  Array.concat [ r.local_load; r.global_load; r.local_store; r.global_store ]
