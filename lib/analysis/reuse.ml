module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk

(* Growable Fenwick (binary indexed) tree over 1-based positions. *)
module Fenwick = struct
  type t = { mutable tree : int array (* length = capacity + 1 *) }

  let create () = { tree = Array.make 2 0 }

  let capacity t = Array.length t.tree - 1

  let add t i delta =
    let n = capacity t in
    let i = ref i in
    while !i <= n do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  let prefix t i =
    let acc = ref 0 and i = ref (min i (capacity t)) in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  (* double the capacity, re-adding the currently marked positions *)
  let grow t marked =
    let new_cap = max 2 (2 * capacity t) in
    t.tree <- Array.make (new_cap + 1) 0;
    Hashtbl.iter (fun _ pos -> add t pos 1) marked

  let ensure t i marked =
    while i > capacity t do
      grow t marked
    done
end

type t = {
  block_shift : int;
  fenwick : Fenwick.t;
  last_pos : (int, int) Hashtbl.t;  (* block -> most recent access position *)
  histogram : (int, int) Hashtbl.t;  (* finite reuse distance -> count *)
  mutable time : int;  (* 1-based position counter *)
  mutable accesses : int;
  mutable cold : int;
}

let create ?(block_bytes = 32) () =
  if block_bytes <= 0 || block_bytes land (block_bytes - 1) <> 0 then
    invalid_arg "Reuse.create: block_bytes must be a positive power of two";
  let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
  {
    block_shift = log2 block_bytes 0;
    fenwick = Fenwick.create ();
    last_pos = Hashtbl.create 4096;
    histogram = Hashtbl.create 1024;
    time = 0;
    accesses = 0;
    cold = 0;
  }

let record_distance t d =
  Hashtbl.replace t.histogram d (1 + Option.value (Hashtbl.find_opt t.histogram d) ~default:0)

let access t addr =
  let block = addr lsr t.block_shift in
  t.time <- t.time + 1;
  t.accesses <- t.accesses + 1;
  Fenwick.ensure t.fenwick t.time t.last_pos;
  (match Hashtbl.find_opt t.last_pos block with
  | Some p ->
    (* distinct blocks touched since position p = marks in (p, now) *)
    let marks_after_p = Fenwick.prefix t.fenwick (t.time - 1) - Fenwick.prefix t.fenwick p in
    record_distance t marks_after_p;
    Fenwick.add t.fenwick p (-1)
  | None -> t.cold <- t.cold + 1);
  Fenwick.add t.fenwick t.time 1;
  Hashtbl.replace t.last_pos block t.time

let is_mem_code = Array.init Opcode.count (fun i -> Opcode.is_mem (Opcode.of_int i))

let sink t =
  Mica_trace.Sink.make ~name:"reuse" (fun c ->
      let len = c.Chunk.len in
      let ops = c.Chunk.op and addrs = c.Chunk.addr in
      for i = 0 to len - 1 do
        if Array.unsafe_get is_mem_code (Array.unsafe_get ops i) then
          access t (Array.unsafe_get addrs i)
      done)

let accesses t = t.accesses
let cold_misses t = t.cold

let default_cutoffs = [| 4; 16; 64; 256; 1024; 4096; 16384; 65536 |]

let cdf t cutoffs =
  let denom = float_of_int (max 1 t.accesses) in
  Array.map
    (fun c ->
      let count =
        Hashtbl.fold (fun d n acc -> if d <= c then acc + n else acc) t.histogram 0
      in
      float_of_int count /. denom)
    cutoffs

let miss_rate_for_capacity t ~blocks =
  if t.accesses = 0 then 0.0
  else begin
    let hits =
      Hashtbl.fold (fun d n acc -> if d < blocks then acc + n else acc) t.histogram 0
    in
    float_of_int (t.accesses - hits) /. float_of_int t.accesses
  end

let mean_log2 t =
  let sum = ref 0.0 and n = ref 0 in
  Hashtbl.iter
    (fun d c ->
      sum := !sum +. (float_of_int c *. (log (float_of_int (d + 1)) /. log 2.0));
      n := !n + c)
    t.histogram;
  if !n = 0 then 0.0 else !sum /. float_of_int !n
