module Reg = Mica_isa.Reg
module Chunk = Mica_trace.Chunk

let dep_cutoffs = [| 1; 2; 4; 8; 16; 32; 64 |]

type t = {
  mutable instrs : int;
  mutable operands : int;  (* total register source operands seen *)
  last_write : int array;  (* dynamic index of last write per register, -1 if never *)
  uses : int array;  (* reads of the current instance per register *)
  mutable instances : int;  (* completed register instances *)
  mutable total_uses : int;  (* reads accumulated over completed instances *)
  dep_counts : int array;  (* histogram over cutoffs; last bucket = "> 64" *)
  mutable dep_total : int;
}

type result = { avg_input_operands : float; avg_degree_of_use : float; dep_cdf : float array }

let create () =
  {
    instrs = 0;
    operands = 0;
    last_write = Array.make Reg.count (-1);
    uses = Array.make Reg.count 0;
    instances = 0;
    total_uses = 0;
    dep_counts = Array.make (Array.length dep_cutoffs + 1) 0;
    dep_total = 0;
  }

(* Top-level recursion: a nested [let rec] capturing [d] would allocate a
   closure on each call, and this runs for every dependent source read. *)
let rec bucket_from d i n =
  if i >= n then n else if d <= dep_cutoffs.(i) then i else bucket_from d (i + 1) n

let bucket_of_distance d = bucket_from d 0 (Array.length dep_cutoffs)

let read t r =
  if not (Reg.is_none r) then begin
    t.operands <- t.operands + 1;
    if Reg.carries_dependency r then begin
      t.uses.(r) <- t.uses.(r) + 1;
      let lw = t.last_write.(r) in
      if lw >= 0 then begin
        let d = t.instrs - lw in
        let b = bucket_of_distance d in
        t.dep_counts.(b) <- t.dep_counts.(b) + 1;
        t.dep_total <- t.dep_total + 1
      end
    end
  end

let write t r =
  if Reg.carries_dependency r then begin
    (* finalize the instance being overwritten *)
    if t.last_write.(r) >= 0 then begin
      t.instances <- t.instances + 1;
      t.total_uses <- t.total_uses + t.uses.(r)
    end;
    t.uses.(r) <- 0;
    t.last_write.(r) <- t.instrs
  end

let sink t =
  Mica_trace.Sink.make ~name:"regtraffic" (fun c ->
      let len = c.Chunk.len in
      let src1 = c.Chunk.src1 and src2 = c.Chunk.src2 and dst = c.Chunk.dst in
      for i = 0 to len - 1 do
        t.instrs <- t.instrs + 1;
        read t (Array.unsafe_get src1 i);
        read t (Array.unsafe_get src2 i);
        write t (Array.unsafe_get dst i)
      done)

let reset t =
  t.instrs <- 0;
  t.operands <- 0;
  Array.fill t.last_write 0 (Array.length t.last_write) (-1);
  Array.fill t.uses 0 (Array.length t.uses) 0;
  t.instances <- 0;
  t.total_uses <- 0;
  Array.fill t.dep_counts 0 (Array.length t.dep_counts) 0;
  t.dep_total <- 0

let result t =
  (* flush live instances *)
  let instances = ref t.instances and total_uses = ref t.total_uses in
  Array.iteri
    (fun r lw ->
      if lw >= 0 then begin
        incr instances;
        total_uses := !total_uses + t.uses.(r)
      end)
    t.last_write;
  let cdf = Array.make (Array.length dep_cutoffs) 0.0 in
  let denom = float_of_int (max 1 t.dep_total) in
  let acc = ref 0 in
  Array.iteri
    (fun i _ ->
      acc := !acc + t.dep_counts.(i);
      cdf.(i) <- float_of_int !acc /. denom)
    cdf;
  {
    avg_input_operands = float_of_int t.operands /. float_of_int (max 1 t.instrs);
    avg_degree_of_use = float_of_int !total_uses /. float_of_int (max 1 !instances);
    dep_cdf = cdf;
  }

let to_vector r = Array.append [| r.avg_input_operands; r.avg_degree_of_use |] r.dep_cdf
