module Reg = Mica_isa.Reg
module Chunk = Mica_trace.Chunk

(* One dependence-limited window simulator.  [completions] is a ring holding
   the completion cycle of the last [window] instructions; an instruction
   cannot issue before the one [window] slots earlier completed. *)
type window_sim = {
  window : int;
  reg_ready : int array;  (* cycle each register's current value is available *)
  completions : int array;  (* ring of completion cycles *)
  mutable head : int;
  mutable filled : int;
  mutable last_cycle : int;  (* max completion so far *)
}

type t = { sims : window_sim array; mutable count : int }

let default_windows = [| 32; 64; 128; 256 |]

let make_sim window =
  assert (window > 0);
  {
    window;
    reg_ready = Array.make Reg.count 0;
    completions = Array.make window 0;
    head = 0;
    filled = 0;
    last_cycle = 0;
  }

let create ?(windows = default_windows) () =
  { sims = Array.map make_sim windows; count = 0 }

let step sim ~src1 ~src2 ~dst =
  (* source-readiness inline: a local helper closure here would be
     allocated on every call on the non-flambda compiler *)
  let a = if Reg.carries_dependency src1 then sim.reg_ready.(src1) else 0 in
  let b = if Reg.carries_dependency src2 then sim.reg_ready.(src2) else 0 in
  let window_free =
    if sim.filled < sim.window then 0 else sim.completions.(sim.head)
  in
  let issue =
    let deps = if a > b then a else b in
    if window_free > deps then window_free else deps
  in
  let completion = issue + 1 in
  sim.completions.(sim.head) <- completion;
  sim.head <- (sim.head + 1) mod sim.window;
  if sim.filled < sim.window then sim.filled <- sim.filled + 1;
  if Reg.carries_dependency dst then sim.reg_ready.(dst) <- completion;
  if completion > sim.last_cycle then sim.last_cycle <- completion

(* Window simulators are independent, so each one sweeps the whole chunk
   before the next starts: one simulator's state stays hot for the entire
   inner loop instead of being evicted by its siblings on every element. *)
let sink t =
  Mica_trace.Sink.make ~name:"ilp" (fun c ->
      let len = c.Chunk.len in
      let src1 = c.Chunk.src1 and src2 = c.Chunk.src2 and dst = c.Chunk.dst in
      t.count <- t.count + len;
      Array.iter
        (fun sim ->
          for i = 0 to len - 1 do
            step sim ~src1:(Array.unsafe_get src1 i) ~src2:(Array.unsafe_get src2 i)
              ~dst:(Array.unsafe_get dst i)
          done)
        t.sims)

let reset t =
  Array.iter
    (fun sim ->
      Array.fill sim.reg_ready 0 (Array.length sim.reg_ready) 0;
      Array.fill sim.completions 0 sim.window 0;
      sim.head <- 0;
      sim.filled <- 0;
      sim.last_cycle <- 0)
    t.sims;
  t.count <- 0

let ipc t =
  Array.map
    (fun sim ->
      if sim.last_cycle = 0 then 0.0 else float_of_int t.count /. float_of_int sim.last_cycle)
    t.sims

let instructions t = t.count
