(** Idealized instruction-level parallelism analyzer: characteristics 7-10.

    Models the paper's idealized out-of-order processor: perfect caches,
    perfect branch prediction, unlimited functional units and unit
    execution latency — the only constraint is the instruction window.  An
    instruction may issue once (i) its register sources are produced and
    (ii) it fits in the window, i.e. the instruction [window] positions
    earlier has completed.  The reported characteristic is the achieved IPC
    for windows of 32, 64, 128 and 256 in-flight instructions. *)

type t

val default_windows : int array
(** [[|32; 64; 128; 256|]], the paper's window sizes. *)

val create : ?windows:int array -> unit -> t
(** Windows must be positive and are simulated independently. *)

val sink : t -> Mica_trace.Sink.t

val ipc : t -> float array
(** Achieved IPC per window, in the order given at creation. *)

val reset : t -> unit
(** Return to the freshly-created state in place (no allocation); used by
    the windowed streaming mode. *)

val instructions : t -> int
