(** Register-traffic analyzer: characteristics 11-19 (Franklin & Sohi style).

    Measures: the average number of register input operands per
    instruction; the average degree of use of a register instance (how many
    times a produced value is read before being overwritten); and the
    cumulative distribution of the register dependency distance — the
    number of dynamic instructions between producing a register value and
    consuming it — at cut-offs 1, 2, 4, 8, 16, 32 and 64.

    The hardwired zero register carries no dependencies and is excluded
    from degree-of-use and dependency-distance statistics, but a present
    operand still counts towards the operand average. *)

type t

type result = {
  avg_input_operands : float;
  avg_degree_of_use : float;
  dep_cdf : float array;
      (** P(distance = 1), P(<= 2), P(<= 4), P(<= 8), P(<= 16), P(<= 32),
          P(<= 64) over consumed register values *)
}

val create : unit -> t
val sink : t -> Mica_trace.Sink.t

val result : t -> result
(** Finalizes pending register instances; call once after the trace. *)

val to_vector : result -> float array
(** The nine values in Table II order (rows 11-19). *)

val reset : t -> unit
(** Return to the freshly-created state in place (no allocation); used by
    the windowed streaming mode. *)

val dep_cutoffs : int array
(** [[|1; 2; 4; 8; 16; 32; 64|]]. *)
