type t = {
  mix : Mix.t;
  ilp : Ilp.t;
  regtraffic : Regtraffic.t;
  working_set : Working_set.t;
  strides : Strides.t;
  ppm : Ppm.t;
}

let create ?(ppm_order = 8) ?ilp_windows () =
  {
    mix = Mix.create ();
    ilp = Ilp.create ?windows:ilp_windows ();
    regtraffic = Regtraffic.create ();
    working_set = Working_set.create ();
    strides = Strides.create ();
    ppm = Ppm.create ~order:ppm_order ();
  }

(* Per-family chunk-time spans.  One atomic load per chunk per family when
   metrics are off; per-chunk granularity (4096 instructions) keeps the
   enabled-path cost negligible too. *)
let timed name (s : Mica_trace.Sink.t) =
  {
    s with
    Mica_trace.Sink.on_chunk =
      (fun c -> Mica_obs.Obs.span name (fun () -> s.Mica_trace.Sink.on_chunk c));
  }

let sink t =
  let fanout =
    Mica_trace.Sink.fanout
      [
        timed "analyzer.mix" (Mix.sink t.mix);
        timed "analyzer.ilp" (Ilp.sink t.ilp);
        timed "analyzer.regtraffic" (Regtraffic.sink t.regtraffic);
        timed "analyzer.working_set" (Working_set.sink t.working_set);
        timed "analyzer.strides" (Strides.sink t.strides);
        timed "analyzer.ppm" (Ppm.sink t.ppm);
      ]
  in
  (* Fault-injection point: an analyzer failure at chunk granularity,
     before the sub-analyzers see the chunk.  The wrapper only exists when
     a plan is installed at sink-construction time, so the normal path is
     the bare fanout. *)
  if not (Mica_util.Fault.enabled ()) then fanout
  else begin
    let fed = ref 0 in
    Mica_trace.Sink.make ~name:"analyzer" (fun chunk ->
        Mica_util.Fault.check Mica_util.Fault.Analyzer_chunk ~key:!fed;
        incr fed;
        fanout.Mica_trace.Sink.on_chunk chunk)
  end

let mix t = Mix.result t.mix
let ilp_ipc t = Ilp.ipc t.ilp
let regtraffic t = Regtraffic.result t.regtraffic
let working_set t = Working_set.result t.working_set
let strides t = Strides.result t.strides
let ppm_miss_rates t = Ppm.to_vector t.ppm
let instructions t = Ilp.instructions t.ilp

let vector t =
  let v =
    Array.concat
      [
        Mix.to_vector (mix t);
        ilp_ipc t;
        Regtraffic.to_vector (regtraffic t);
        Working_set.to_vector (working_set t);
        Strides.to_vector (strides t);
        ppm_miss_rates t;
      ]
  in
  assert (Array.length v = Characteristics.count);
  v

let analyze_full ?ppm_order program ~icount =
  let t = create ?ppm_order () in
  let (_ : int) = Mica_trace.Generator.run program ~icount ~sink:(sink t) in
  t

let analyze ?ppm_order program ~icount = vector (analyze_full ?ppm_order program ~icount)
