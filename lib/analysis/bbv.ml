module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk
module Rng = Mica_util.Rng

type t = {
  interval : int;
  mutable current : (int, int) Hashtbl.t;  (* block entry pc -> executions *)
  mutable in_interval : int;
  mutable finished : (int, int) Hashtbl.t list;  (* reverse order *)
  mutable at_block_start : bool;
  mutable current_block : int;  (* entry pc of the block being executed *)
  mutable finalized : bool;
}

let create ?(interval = 10_000) () =
  if interval <= 0 then invalid_arg "Bbv.create: interval must be positive";
  {
    interval;
    current = Hashtbl.create 256;
    in_interval = 0;
    finished = [];
    at_block_start = true;
    current_block = 0;
    finalized = false;
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let close_interval t =
  t.finished <- t.current :: t.finished;
  t.current <- Hashtbl.create 256;
  t.in_interval <- 0

let is_control_code = Array.init Opcode.count (fun i -> Opcode.is_control (Opcode.of_int i))

let sink t =
  Mica_trace.Sink.make ~name:"bbv" (fun c ->
      let len = c.Chunk.len in
      let pcs = c.Chunk.pc and ops = c.Chunk.op in
      for i = 0 to len - 1 do
        if t.at_block_start then begin
          let pc = Array.unsafe_get pcs i in
          t.current_block <- pc;
          bump t.current pc;
          t.at_block_start <- false
        end;
        (* a control transfer ends the current block; the next instruction
           starts a new one whether or not the transfer was taken *)
        if Array.unsafe_get is_control_code (Array.unsafe_get ops i) then
          t.at_block_start <- true;
        t.in_interval <- t.in_interval + 1;
        if t.in_interval >= t.interval then close_interval t
      done)

let finalize t =
  if not t.finalized then begin
    if t.in_interval >= t.interval / 2 then close_interval t;
    t.finalized <- true
  end

let intervals_list t =
  finalize t;
  List.rev t.finished

let interval_count t = List.length (intervals_list t)

let block_ids t =
  let union = Hashtbl.create 1024 in
  List.iter
    (fun tbl -> Hashtbl.iter (fun pc _ -> Hashtbl.replace union pc ()) tbl)
    (intervals_list t);
  let ids = Array.of_seq (Hashtbl.to_seq_keys union) in
  Array.sort compare ids;
  ids

let matrix t =
  let ids = block_ids t in
  let index = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i pc -> Hashtbl.replace index pc i) ids;
  List.map
    (fun tbl ->
      let row = Array.make (Array.length ids) 0.0 in
      let total = Hashtbl.fold (fun _ c acc -> acc + c) tbl 0 in
      Hashtbl.iter
        (fun pc c ->
          row.(Hashtbl.find index pc) <-
            (if total > 0 then float_of_int c /. float_of_int total else 0.0))
        tbl;
      row)
    (intervals_list t)
  |> Array.of_list

let projected ?(dims = 15) ?(seed = 0xBB5L) t =
  let m = matrix t in
  let cols = if Array.length m = 0 then 0 else Array.length m.(0) in
  let rng = Rng.create ~seed in
  (* fixed random projection matrix, entries uniform in [-1, 1) *)
  let proj =
    Array.init cols (fun _ -> Array.init dims (fun _ -> Rng.float rng 2.0 -. 1.0))
  in
  Array.map
    (fun row ->
      let out = Array.make dims 0.0 in
      Array.iteri
        (fun c v ->
          if v <> 0.0 then
            for d = 0 to dims - 1 do
              out.(d) <- out.(d) +. (v *. proj.(c).(d))
            done)
        row;
      out)
    m
