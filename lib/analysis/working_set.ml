module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk
module Int_map = Mica_util.Int_map

type result = { data_blocks : int; data_pages : int; instr_blocks : int; instr_pages : int }

(* [Int_map] used as a set: one multiplicative-hash probe per touch,
   no allocation, no boxing.  Block and page numbers are address shifts,
   so the non-negative-key requirement holds. *)
type t = {
  d_blocks : Int_map.t;
  d_pages : Int_map.t;
  i_blocks : Int_map.t;
  i_pages : Int_map.t;
}

let create () =
  {
    d_blocks = Int_map.create ~initial:4096 ();
    d_pages = Int_map.create ~initial:256 ();
    i_blocks = Int_map.create ~initial:1024 ();
    i_pages = Int_map.create ~initial:64 ();
  }

let touch tbl key = Int_map.add_if_absent tbl key

let is_mem_code = Array.init Opcode.count (fun i -> Opcode.is_mem (Opcode.of_int i))

let sink t =
  Mica_trace.Sink.make ~name:"working_set" (fun c ->
      let len = c.Chunk.len in
      let pcs = c.Chunk.pc and ops = c.Chunk.op and addrs = c.Chunk.addr in
      for i = 0 to len - 1 do
        let pc = Array.unsafe_get pcs i in
        touch t.i_blocks (pc lsr 5);
        touch t.i_pages (pc lsr 12);
        if Array.unsafe_get is_mem_code (Array.unsafe_get ops i) then begin
          let addr = Array.unsafe_get addrs i in
          touch t.d_blocks (addr lsr 5);
          touch t.d_pages (addr lsr 12)
        end
      done)

let result t =
  {
    data_blocks = Int_map.length t.d_blocks;
    data_pages = Int_map.length t.d_pages;
    instr_blocks = Int_map.length t.i_blocks;
    instr_pages = Int_map.length t.i_pages;
  }

let to_vector r =
  [|
    float_of_int r.data_blocks;
    float_of_int r.data_pages;
    float_of_int r.instr_blocks;
    float_of_int r.instr_pages;
  |]
