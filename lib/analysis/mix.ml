module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk

type result = {
  total : int;
  frac_load : float;
  frac_store : float;
  frac_control : float;
  frac_arith : float;
  frac_int_mul : float;
  frac_fp : float;
}

(* One counter per opcode class, indexed by [Opcode.to_int]: the hot loop is
   a single unconditional histogram increment per instruction. *)
type t = { mutable n : int; counts : int array }

let create () = { n = 0; counts = Array.make Opcode.count 0 }

let sink t =
  Mica_trace.Sink.make ~name:"mix" (fun c ->
      let len = c.Chunk.len in
      let op = c.Chunk.op and counts = t.counts in
      t.n <- t.n + len;
      for i = 0 to len - 1 do
        let code = Array.unsafe_get op i in
        Array.unsafe_set counts code (Array.unsafe_get counts code + 1)
      done)

let reset t =
  t.n <- 0;
  Array.fill t.counts 0 (Array.length t.counts) 0

let result t =
  let get op = t.counts.(Opcode.to_int op) in
  let d = float_of_int (max 1 t.n) in
  let frac n = float_of_int n /. d in
  {
    total = t.n;
    frac_load = frac (get Load);
    frac_store = frac (get Store);
    frac_control = frac (get Branch + get Jump + get Call + get Return);
    frac_arith = frac (get Int_alu);
    frac_int_mul = frac (get Int_mul);
    frac_fp = frac (get Fp_add + get Fp_mul + get Fp_div);
  }

let to_vector r =
  [| r.frac_load; r.frac_store; r.frac_control; r.frac_arith; r.frac_int_mul; r.frac_fp |]
