(** The extended characteristic set.

    The released MICA tool grew beyond the paper's 47 characteristics;
    this module implements that direction: the canonical 47 plus
    supplementary branch statistics ({!Branch_stats}) and temporal-locality
    measures ({!Reuse}) — 56 characteristics total.  Feature selection run
    over the extended set (see the [extended] experiment) shows whether
    the new measures carry non-redundant information. *)

val count : int
(** 56. *)

val names : string array
val short_names : string array
(** The first 47 entries match {!Characteristics}; the remainder are the
    extension characteristics. *)

val is_extension : int -> bool
(** True for indices 47 and above. *)

val reuse_cutoffs : int array
(** [[|16; 256; 4096; 65536|]] — the reuse-distance cutoffs of the
    temporal-locality extension characteristics. *)

type t

val create : ?ppm_order:int -> unit -> t
val sink : t -> Mica_trace.Sink.t

val vector : t -> float array
(** All 56 characteristics; the first 47 in Table II order. *)

val analyze : ?ppm_order:int -> Mica_trace.Program.t -> icount:int -> float array
