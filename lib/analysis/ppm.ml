module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk

type variant = GAg | PAg | GAs | PAs

let all_variants = [ GAg; PAg; GAs; PAs ]

let variant_name = function GAg -> "GAg" | PAg -> "PAg" | GAs -> "GAs" | PAs -> "PAs"

let uses_local_history = function PAg | PAs -> true | GAg | GAs -> false
let uses_per_address_table = function GAs | PAs -> true | GAg | PAg -> false

module Int_map = Mica_util.Int_map

type predictor = {
  variant : variant;
  order : int;
  table : Int_map.t;  (* context key -> packed (taken, not_taken) counts *)
  mutable misses : int;
}

type t = {
  predictors : predictor array;
  local_hist : Int_map.t;  (* per-branch outcome history *)
  mutable ghist : int;
  order : int;
  mutable branches : int;
}

(* A context entry packs both saturating-free counters into one int:
   taken in the low 31 bits, not-taken above them.  Branch counts are
   bounded by the trace length, far below 2^31, so the halves cannot
   collide. *)
let taken_one = 1
let not_taken_one = 1 lsl 31
let mask31 = (1 lsl 31) - 1

let create ?(order = 8) ?(variants = all_variants) () =
  assert (order >= 0 && order <= 16);
  {
    predictors =
      Array.of_list
        (List.map
           (fun variant -> { variant; order; table = Int_map.create ~initial:4096 (); misses = 0 })
           variants);
    local_hist = Int_map.create ~initial:512 ();
    ghist = 0;
    order;
    branches = 0;
  }

(* Context key for a given order [k], history [h] and (optional) branch pc.
   [k] disambiguates histories of different lengths; the pc component is 0
   for shared-table variants. *)
let key ~pc ~k ~h ~order = (((pc * 17) + k) lsl order) lor (h land ((1 lsl order) - 1))

let history_bits h k = h land ((1 lsl k) - 1)

(* Every conditional branch runs up to [2 * (order + 1)] table probes per
   predictor variant; [Int_map] keeps each one a single multiply-and-scan
   with no allocation. *)

let rec predict_from table ~pc_part ~hist ~order k =
  if k < 0 then true (* no context ever seen: default taken *)
  else
    let c = Int_map.find table (key ~pc:pc_part ~k ~h:(history_bits hist k) ~order) ~default:0 in
    (* entries exist only after an update, so [c > 0] iff the context has
       been seen — the packed halves are never both zero once inserted *)
    if c > 0 then c land mask31 >= c lsr 31
    else predict_from table ~pc_part ~hist ~order (k - 1)

let predict p ~pc ~hist =
  let pc_part = if uses_per_address_table p.variant then pc else 0 in
  predict_from p.table ~pc_part ~hist ~order:p.order p.order

let update p ~pc ~hist ~outcome =
  let pc_part = if uses_per_address_table p.variant then pc else 0 in
  let delta = if outcome then taken_one else not_taken_one in
  for k = 0 to p.order do
    let h = history_bits hist k in
    Int_map.bump p.table (key ~pc:pc_part ~k ~h ~order:p.order) delta
  done

let observe t ~pc ~outcome =
  t.branches <- t.branches + 1;
  let lhist = Int_map.find t.local_hist pc ~default:0 in
  Array.iter
    (fun p ->
      let hist = if uses_local_history p.variant then lhist else t.ghist in
      if predict p ~pc ~hist <> outcome then p.misses <- p.misses + 1;
      update p ~pc ~hist ~outcome)
    t.predictors;
  let bit = Bool.to_int outcome in
  Int_map.set t.local_hist pc (((lhist lsl 1) lor bit) land 0xFFFF);
  t.ghist <- ((t.ghist lsl 1) lor bit) land 0xFFFF

let op_branch = Opcode.to_int Opcode.Branch

let sink t =
  Mica_trace.Sink.make ~name:"ppm" (fun c ->
      let len = c.Chunk.len in
      let ops = c.Chunk.op and pcs = c.Chunk.pc and taken = c.Chunk.taken in
      for i = 0 to len - 1 do
        if Array.unsafe_get ops i = op_branch then
          observe t ~pc:(Array.unsafe_get pcs i)
            ~outcome:(Bytes.unsafe_get taken i <> '\000')
      done)

let miss_rate t variant =
  if t.branches = 0 then 0.0
  else
    let p = Array.to_list t.predictors |> List.find (fun p -> p.variant = variant) in
    float_of_int p.misses /. float_of_int t.branches

let branches t = t.branches

let to_vector t =
  let present v = Array.exists (fun p -> p.variant = v) t.predictors in
  Array.of_list (List.filter present all_variants |> List.map (miss_rate t))
