(** Instruction-mix analyzer: characteristics 1-6 of Table II.

    Fractions of dynamic instructions that are loads, stores, control
    transfers, (integer) arithmetic operations, integer multiplies and
    floating-point operations. *)

type t

type result = {
  total : int;
  frac_load : float;
  frac_store : float;
  frac_control : float;
  frac_arith : float;  (** integer ALU operations (excluding multiplies) *)
  frac_int_mul : float;
  frac_fp : float;
}

val create : unit -> t
val sink : t -> Mica_trace.Sink.t
val result : t -> result

val reset : t -> unit
(** Return to the freshly-created state in place (no allocation); used by
    the windowed streaming mode. *)

val to_vector : result -> float array
(** The six fractions in Table II order. *)
