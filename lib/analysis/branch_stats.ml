module Opcode = Mica_isa.Opcode
module Chunk = Mica_trace.Chunk

type per_branch = { mutable execs : int; mutable taken : int; mutable last : bool; mutable transitions : int }

type t = {
  table : (int, per_branch) Hashtbl.t;
  mutable branches : int;
  mutable taken_total : int;
  mutable transitions_total : int;
  mutable with_history : int;  (** executions that had a previous outcome *)
}

type result = {
  conditional_branches : int;
  static_branches : int;
  taken_rate : float;
  transition_rate : float;
  biased_static_fraction : float;
}

let create () =
  { table = Hashtbl.create 512; branches = 0; taken_total = 0; transitions_total = 0; with_history = 0 }

let observe t ~pc ~taken =
  t.branches <- t.branches + 1;
  if taken then t.taken_total <- t.taken_total + 1;
  match Hashtbl.find_opt t.table pc with
  | None ->
    Hashtbl.add t.table pc
      { execs = 1; taken = (if taken then 1 else 0); last = taken; transitions = 0 }
  | Some b ->
    b.execs <- b.execs + 1;
    if taken then b.taken <- b.taken + 1;
    t.with_history <- t.with_history + 1;
    if b.last <> taken then begin
      b.transitions <- b.transitions + 1;
      t.transitions_total <- t.transitions_total + 1
    end;
    b.last <- taken

let op_branch = Opcode.to_int Opcode.Branch

let sink t =
  Mica_trace.Sink.make ~name:"branch_stats" (fun c ->
      let len = c.Chunk.len in
      let ops = c.Chunk.op and pcs = c.Chunk.pc and taken = c.Chunk.taken in
      for i = 0 to len - 1 do
        if Array.unsafe_get ops i = op_branch then
          observe t ~pc:(Array.unsafe_get pcs i)
            ~taken:(Bytes.unsafe_get taken i <> '\000')
      done)

let result t =
  let static = Hashtbl.length t.table in
  let biased =
    Hashtbl.fold
      (fun _ b acc ->
        let rate = float_of_int b.taken /. float_of_int (max 1 b.execs) in
        if rate >= 0.9 || rate <= 0.1 then acc + 1 else acc)
      t.table 0
  in
  {
    conditional_branches = t.branches;
    static_branches = static;
    taken_rate = float_of_int t.taken_total /. float_of_int (max 1 t.branches);
    transition_rate = float_of_int t.transitions_total /. float_of_int (max 1 t.with_history);
    biased_static_fraction = float_of_int biased /. float_of_int (max 1 static);
  }

let to_vector r = [| r.taken_rate; r.transition_rate; r.biased_static_fraction |]
