(** Correlation elimination (section V-A).

    Iteratively removes the characteristic with the highest average
    correlation with the remaining characteristics: the one carrying the
    least additional information.  Each step records which characteristic
    was dropped and how well the surviving subset still reproduces
    full-space distances.

    The removal order is decided on the full-set correlation matrix
    (computed once); the per-step rho is evaluated incrementally off a
    running per-pair sum-of-squares (see {!Mica_select.Fitness.Subset}),
    making each step O(pairs) instead of O(k * pairs). *)

type step = {
  removed : int;  (** index of the characteristic dropped at this step *)
  avg_abs_corr : float;  (** its average |r| with the others, motivating removal *)
  remaining : int array;  (** surviving characteristic indices, ascending *)
  rho : float;  (** distance correlation of the surviving subset vs. full space *)
}

val run :
  ?pool:Mica_util.Pool.t ->
  ?exact_rho:bool ->
  ?down_to:int ->
  data:Mica_stats.Matrix.t ->
  Fitness.t ->
  step list
(** [run ~data fitness] eliminates one characteristic at a time until
    [down_to] remain (default 1).  [data] is the raw (unnormalized)
    observations matrix — correlations between characteristics are scale
    invariant; [fitness] must come from the normalized version of the same
    matrix.  Steps are returned in elimination order.

    The removal sequence is independent of [exact_rho] and of the pool
    size.  [exact_rho] (default false) rebuilds the running sums in-order
    before each rho, trading the incremental O(pairs) step for a
    drift-free value; the drift between the two is bounded by the
    tolerance differential law in the test suite. *)

val subset_of_size : step list -> int -> int array
(** [subset_of_size steps k] is the surviving subset after elimination has
    reduced the space to [k] characteristics.  Raises [Not_found] if the
    run did not reach [k]. *)

val leave_one_out :
  ?pool:Mica_util.Pool.t -> Fitness.t -> int array -> (int * float) array
(** [leave_one_out fitness subset] scores every candidate removal: for
    each member column [c], the rho of [subset] without [c], evaluated in
    O(pairs) off shared running sums.  Candidates fan out over the pool
    (results in [subset] order, identical at any pool size). *)
