module Stats = Mica_stats
module Pool = Mica_util.Pool
module Obs = Mica_obs.Obs

let m_steps = Obs.counter "ce.steps"

type step = { removed : int; avg_abs_corr : float; remaining : int array; rho : float }

(* Which characteristic to remove is decided on the full-set correlation
   matrix (computed once; sub-matrices are index restrictions of it).  The
   per-step rho is evaluated incrementally: a running per-pair sum of
   squared differences for the surviving subset is maintained, each
   removal subtracts one component column in O(pairs), and rho is one
   fused pass over the sums — instead of re-deriving the subset distances
   from scratch (O(k * pairs) plus a fresh vector) every step.
   [exact_rho] rebuilds the sums in-order before each rho for callers that
   need the drift-free value; the removal sequence is identical either
   way, and the rho drift is bounded by the tolerance differential law in
   the test suite. *)
(* Kept as a plain function (the [select.ce] span wraps a call to it in
   [run]) so the body's free variables stay ordinary arguments rather than
   closure-environment fields. *)
let run_body ~pool ~exact_rho ~down_to ~data fitness =
  let _, n = Stats.Matrix.dims data in
  let down_to = max 1 down_to in
  let corr = Stats.Matrix.correlation_matrix data in
  let alive = Array.make n true in
  let alive_count = ref n in
  let state = Fitness.Subset.of_cols ~pool fitness (Array.init n Fun.id) in
  let steps = ref [] in
  while !alive_count > down_to do
    (* average |r| of each live characteristic against the other live ones *)
    let best = ref (-1) and best_avg = ref neg_infinity in
    for i = 0 to n - 1 do
      if alive.(i) then begin
        let acc = ref 0.0 and cnt = ref 0 in
        for j = 0 to n - 1 do
          if alive.(j) && j <> i then begin
            acc := !acc +. Float.abs corr.(i).(j);
            incr cnt
          end
        done;
        let avg = if !cnt = 0 then 0.0 else !acc /. float_of_int !cnt in
        if avg > !best_avg then begin
          best_avg := avg;
          best := i
        end
      end
    done;
    alive.(!best) <- false;
    decr alive_count;
    Obs.incr m_steps;
    Fitness.Subset.remove ~pool state !best;
    if exact_rho then Fitness.Subset.rebuild ~pool state;
    let remaining = Fitness.Subset.cols state in
    steps :=
      { removed = !best;
        avg_abs_corr = !best_avg;
        remaining;
        rho = Fitness.Subset.rho ~pool state }
      :: !steps
  done;
  List.rev !steps

let run ?(pool = Pool.sequential) ?(exact_rho = false) ?(down_to = 1) ~data fitness =
  Obs.span "select.ce" (fun () -> run_body ~pool ~exact_rho ~down_to ~data fitness)

let subset_of_size steps k =
  match List.find_opt (fun s -> Array.length s.remaining = k) steps with
  | Some s -> s.remaining
  | None -> raise Not_found

(* Score every candidate removal of the given subset: rho of the subset
   with that column left out, each in O(pairs) off the shared running
   sums.  Candidates are independent, so the sweep fans out over the pool
   (per-block distance buffers); results come back in column order. *)
let leave_one_out ?(pool = Pool.sequential) fitness subset =
  let state = Fitness.Subset.of_cols fitness subset in
  let k = Array.length subset in
  let out = Array.make k 0.0 in
  Pool.run_blocks pool k (fun _ lo hi ->
      let buf = Array.make (Fitness.n_pairs fitness) 0.0 in
      for i = lo to hi do
        out.(i) <- Fitness.Subset.rho_without ~buf state subset.(i)
      done);
  Array.map2 (fun c r -> (c, r)) subset out
