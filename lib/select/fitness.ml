module Stats = Mica_stats
module Pool = Mica_util.Pool

(* The squared-difference components live in one flat row-major buffer,
   [n_pairs * n_chars] floats: component c of pair p is
   [flat.(p * n_chars + c)].  A subset evaluation is then a single fused
   pass — per pair, sum the selected components in subset order, sqrt,
   and feed the Pearson accumulators — with no intermediate allocation.
   The full-space side of the correlation never changes, so its mean and
   centered sum of squares are computed once at [create].

   Bit-exactness contract: every accumulation below visits pairs in
   condensed order and subset columns in the caller's order, which makes
   [rho]/[paper_fitness] bit-identical to the naive reference
   [Correlation.pearson (Distance.subset_distances components subset) full]
   — the differential suite checks this with exact equality.  Only the
   {!Subset} delta path (sum +/- column) is allowed to drift, and only
   within the tolerance documented in DESIGN.md §9. *)

type t = {
  flat : float array;  (* pairs x chars squared diffs, pair-major *)
  full : float array;  (* full-space distances, condensed order *)
  full_mean : float;
  full_ss : float;  (* sum over pairs of (full - full_mean)^2 *)
  n_chars : int;
  n_pairs : int;
  scratch : float array;  (* subset-distance buffer for single-domain use *)
}

type ctx = { fit : t; buf : float array }

let create normalized =
  let rows, cols = Stats.Matrix.dims normalized in
  if rows < 2 then invalid_arg "Fitness.create: need at least 2 observations";
  let n_pairs = rows * (rows - 1) / 2 in
  let flat = Array.make (n_pairs * cols) 0.0 in
  let full = Array.make n_pairs 0.0 in
  (* one pass: fill the components row and derive the full distance as the
     sqrt of its running sum, in the same column order as the naive
     [Distance.condensed], so [full] is bit-identical to it *)
  let k = ref 0 in
  for i = 0 to rows - 1 do
    let a = normalized.(i) in
    for j = i + 1 to rows - 1 do
      let b = normalized.(j) in
      let base = !k * cols in
      let sum = ref 0.0 in
      for c = 0 to cols - 1 do
        let d = Array.unsafe_get a c -. Array.unsafe_get b c in
        let sq = d *. d in
        Array.unsafe_set flat (base + c) sq;
        sum := !sum +. sq
      done;
      full.(!k) <- sqrt !sum;
      incr k
    done
  done;
  let full_mean = Stats.Descriptive.mean full in
  let full_ss = ref 0.0 in
  for p = 0 to n_pairs - 1 do
    let dy = full.(p) -. full_mean in
    full_ss := !full_ss +. (dy *. dy)
  done;
  {
    flat;
    full;
    full_mean;
    full_ss = !full_ss;
    n_chars = cols;
    n_pairs;
    scratch = Array.make n_pairs 0.0;
  }

let n_characteristics t = t.n_chars
let n_pairs t = t.n_pairs
let full_distances t = t.full

let subset_distance_into t buf subset =
  let cc = t.n_chars in
  let k = Array.length subset in
  for p = 0 to t.n_pairs - 1 do
    let base = p * cc in
    let sum = ref 0.0 in
    for ci = 0 to k - 1 do
      sum := !sum +. Array.unsafe_get t.flat (base + Array.unsafe_get subset ci)
    done;
    Array.unsafe_set buf p (sqrt !sum)
  done

let distances_for t subset =
  let out = Array.make t.n_pairs 0.0 in
  subset_distance_into t out subset;
  out

(* Pearson of the distances in [buf] against the precomputed full-space
   moments; op-for-op the tail of [Correlation.pearson buf full]. *)
let pearson_of_buf t buf =
  let mx = Stats.Descriptive.mean buf in
  let my = t.full_mean in
  let sxy = ref 0.0 and sxx = ref 0.0 in
  for p = 0 to t.n_pairs - 1 do
    let dx = Array.unsafe_get buf p -. mx in
    let dy = Array.unsafe_get t.full p -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx)
  done;
  let denom = sqrt (!sxx *. t.full_ss) in
  if denom > 0.0 then !sxy /. denom else 0.0

let context t = { fit = t; buf = Array.make t.n_pairs 0.0 }

let rho_with ctx subset =
  if Array.length subset = 0 then 0.0
  else begin
    subset_distance_into ctx.fit ctx.buf subset;
    pearson_of_buf ctx.fit ctx.buf
  end

let scale t n = 1.0 -. (float_of_int n /. float_of_int t.n_chars)

let fitness_with ctx subset =
  let n = Array.length subset in
  if n = 0 then 0.0 else rho_with ctx subset *. scale ctx.fit n

let rho t subset = if Array.length subset = 0 then 0.0 else rho_with { fit = t; buf = t.scratch } subset

let paper_fitness t subset =
  let n = Array.length subset in
  if n = 0 then 0.0 else rho t subset *. scale t n

(* ---------------- incremental subset state ---------------- *)

module Subset = struct
  type fitness = t

  type t = {
    fit : fitness;
    sums : float array;  (* per-pair sum of squared diffs over the members *)
    members : bool array;
    mutable count : int;
    buf : float array;  (* distance buffer for [rho] *)
  }

  let make fit =
    {
      fit;
      sums = Array.make fit.n_pairs 0.0;
      members = Array.make fit.n_chars false;
      count = 0;
      buf = Array.make fit.n_pairs 0.0;
    }

  let copy s =
    {
      fit = s.fit;
      sums = Array.copy s.sums;
      members = Array.copy s.members;
      count = s.count;
      buf = Array.make s.fit.n_pairs 0.0;
    }

  let cardinal s = s.count
  let mem s c = s.members.(c)

  let cols s =
    let out = Array.make s.count 0 in
    let k = ref 0 in
    Array.iteri
      (fun c m ->
        if m then begin
          out.(!k) <- c;
          incr k
        end)
      s.members;
    out

  (* The elementwise phases below (sums update, distance fill) are
     parallelized by splitting the pair index range: every slot is written
     independently, so the result is bit-identical at any [jobs]. *)

  let add ?(pool = Pool.sequential) s c =
    if not s.members.(c) then begin
      s.members.(c) <- true;
      s.count <- s.count + 1;
      let flat = s.fit.flat and cc = s.fit.n_chars and sums = s.sums in
      Pool.run_blocks pool s.fit.n_pairs (fun _ lo hi ->
          for p = lo to hi do
            Array.unsafe_set sums p
              (Array.unsafe_get sums p +. Array.unsafe_get flat ((p * cc) + c))
          done)
    end

  let remove ?(pool = Pool.sequential) s c =
    if s.members.(c) then begin
      s.members.(c) <- false;
      s.count <- s.count - 1;
      let flat = s.fit.flat and cc = s.fit.n_chars and sums = s.sums in
      Pool.run_blocks pool s.fit.n_pairs (fun _ lo hi ->
          for p = lo to hi do
            Array.unsafe_set sums p
              (Array.unsafe_get sums p -. Array.unsafe_get flat ((p * cc) + c))
          done)
    end

  (* Recompute [sums] from scratch in ascending column order.  Resets any
     floating-point drift the +/- delta updates accumulated; after
     [rebuild], [rho] is bit-identical to the fused full recompute. *)
  let rebuild ?(pool = Pool.sequential) s =
    let subset = cols s in
    let flat = s.fit.flat and cc = s.fit.n_chars and sums = s.sums in
    let k = Array.length subset in
    Pool.run_blocks pool s.fit.n_pairs (fun _ lo hi ->
        for p = lo to hi do
          let base = p * cc in
          let sum = ref 0.0 in
          for ci = 0 to k - 1 do
            sum := !sum +. Array.unsafe_get flat (base + Array.unsafe_get subset ci)
          done;
          Array.unsafe_set sums p !sum
        done)

  let set_cols ?pool s subset =
    Array.fill s.members 0 s.fit.n_chars false;
    s.count <- 0;
    Array.iter
      (fun c ->
        if c < 0 || c >= s.fit.n_chars then
          invalid_arg "Fitness.Subset.set_cols: column out of range";
        if not s.members.(c) then begin
          s.members.(c) <- true;
          s.count <- s.count + 1
        end)
      subset;
    rebuild ?pool s

  let of_cols ?pool fit subset =
    let s = make fit in
    set_cols ?pool s subset;
    s

  (* Copy the membership and running sums between two states over the same
     fitness; [dst]'s distance buffer is untouched.  O(pairs), no
     allocation — the GA uses this to seed a child's state from its
     parent's before applying the mutation deltas. *)
  let blit ~src ~dst =
    if src.fit != dst.fit then invalid_arg "Fitness.Subset.blit: different fitness";
    Array.blit src.sums 0 dst.sums 0 src.fit.n_pairs;
    Array.blit src.members 0 dst.members 0 src.fit.n_chars;
    dst.count <- src.count

  let rho ?(pool = Pool.sequential) s =
    if s.count = 0 then 0.0
    else begin
      let sums = s.sums and buf = s.buf in
      Pool.run_blocks pool s.fit.n_pairs (fun _ lo hi ->
          for p = lo to hi do
            Array.unsafe_set buf p (sqrt (Array.unsafe_get sums p))
          done);
      pearson_of_buf s.fit buf
    end

  let fitness ?pool s = if s.count = 0 then 0.0 else rho ?pool s *. scale s.fit s.count

  (* Leave-one-out: rho of the current subset without column [c], as
     [sqrt (sums - column c)] in O(pairs) — the incremental step that
     turns a full candidate sweep from O(k^2 pairs) into O(k pairs). *)
  let rho_without ?(pool = Pool.sequential) ?buf s c =
    if not s.members.(c) then rho ~pool s
    else if s.count = 1 then 0.0
    else begin
      let buf = match buf with Some b -> b | None -> s.buf in
      let sums = s.sums and flat = s.fit.flat and cc = s.fit.n_chars in
      Pool.run_blocks pool s.fit.n_pairs (fun _ lo hi ->
          for p = lo to hi do
            Array.unsafe_set buf p
              (sqrt (Float.max 0.0 (Array.unsafe_get sums p -. Array.unsafe_get flat ((p * cc) + c))))
          done);
      pearson_of_buf s.fit buf
    end
end
