module Rng = Mica_util.Rng
module Pool = Mica_util.Pool
module Obs = Mica_obs.Obs

let m_generations = Obs.counter "ga.generations"
let m_evaluations = Obs.counter "ga.evaluations"

type config = {
  population : int;
  max_generations : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;
  elite : int;
  stall_generations : int;
  init_select_prob : float;
  delta_eval : bool;
}

let default_config =
  {
    population = 48;
    max_generations = 250;
    tournament_size = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.03;
    elite = 2;
    stall_generations = 40;
    init_select_prob = 0.25;
    delta_eval = true;
  }

type result = {
  selected : int array;
  fitness : float;
  rho : float;
  generations_run : int;
  best_history : float array;
  evaluations : int;
}

let genome_key genome =
  let buf = Bytes.make (Array.length genome) '0' in
  Array.iteri (fun i b -> if b then Bytes.set buf i '1') genome;
  Bytes.to_string buf

let subset_of_genome genome =
  let out = ref [] in
  for i = Array.length genome - 1 downto 0 do
    if genome.(i) then out := i :: !out
  done;
  Array.of_list !out

(* bits where the genome disagrees with the subset state's membership *)
let diff_to_state st genome =
  let d = ref 0 in
  Array.iteri (fun c b -> if b <> Fitness.Subset.mem st c then incr d) genome;
  !d

(* Kept as a plain function (the [select.ga] span wraps a call to it in
   [run]) so the body's free variables stay ordinary arguments rather than
   closure-environment fields. *)
let run_body ~config ~pool ~rng fitness =
  let n = Fitness.n_characteristics fitness in
  let pop = config.population in
  let cache : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let evaluations = ref 0 in
  (* All state below is preallocated once and reused every generation, so
     the steady-state loop does not allocate per evaluation.  Each
     population slot owns two subset states (previous and next
     generation); a slot's state is valid when it holds the running
     per-pair sums for the genome currently in that slot. *)
  let states_prev = Array.init pop (fun _ -> Fitness.Subset.make fitness) in
  let states_next = Array.init pop (fun _ -> Fitness.Subset.make fitness) in
  let valid_prev = Array.make pop false in
  let valid_next = Array.make pop false in
  let parents = Array.make pop (-1) in
  let keys = Array.make pop "" in
  let scores = Array.make pop 0.0 in
  (* Evaluate one generation.  The grouping pass is sequential and keyed
     on genome content, so which genomes get evaluated — and through which
     path — depends only on the genomes and the cache, never on the pool
     size; the parallel phase evaluates each distinct new genome exactly
     once, independently, with per-block scratch.  Results are therefore
     bit-identical at any [jobs]. *)
  let eval_batch population (states_prev, valid_prev) (states_next, valid_next) =
    Array.iteri (fun i g -> keys.(i) <- genome_key g) population;
    Array.fill valid_next 0 pop false;
    let first_slot : (string, int) Hashtbl.t = Hashtbl.create (2 * pop) in
    let fresh = ref [] in
    for i = pop - 1 downto 0 do
      if not (Hashtbl.mem cache keys.(i)) && not (Hashtbl.mem first_slot keys.(i))
      then begin
        Hashtbl.add first_slot keys.(i) i;
        fresh := i :: !fresh
      end
    done;
    let fresh = Array.of_list !fresh in
    let out = Array.make (Array.length fresh) 0.0 in
    Pool.run_blocks pool (Array.length fresh) (fun _ lo hi ->
        for u = lo to hi do
          let i = fresh.(u) in
          let g = population.(i) in
          let st = states_next.(i) in
          let p = parents.(i) in
          let delta =
            config.delta_eval && p >= 0 && valid_prev.(p)
            &&
            let d = diff_to_state states_prev.(p) g in
            let card = ref 0 in
            Array.iter (fun b -> if b then incr card) g;
            d > 0 && 2 * d < !card
          in
          if delta then begin
            (* close descendant of an evaluated parent: carry the parent's
               running sums over and flip only the differing columns *)
            Fitness.Subset.blit ~src:states_prev.(p) ~dst:st;
            Array.iteri
              (fun c b ->
                if b <> Fitness.Subset.mem st c then
                  if b then Fitness.Subset.add st c else Fitness.Subset.remove st c)
              g
          end
          else Fitness.Subset.set_cols st (subset_of_genome g);
          valid_next.(i) <- true;
          out.(u) <- Fitness.Subset.fitness st
        done);
    Array.iteri
      (fun u i ->
        incr evaluations;
        Obs.incr m_evaluations;
        Hashtbl.add cache keys.(i) out.(u))
      fresh;
    for i = 0 to pop - 1 do
      scores.(i) <- Hashtbl.find cache keys.(i);
      (* cache-hit slot whose genome is unchanged from its parent (an
         elite, or an unmutated copy): keep its sums alive so its own
         children can still take the delta path next generation *)
      if
        config.delta_eval && (not valid_next.(i))
        && parents.(i) >= 0
        && valid_prev.(parents.(i))
        && diff_to_state states_prev.(parents.(i)) population.(i) = 0
      then begin
        Fitness.Subset.blit ~src:states_prev.(parents.(i)) ~dst:states_next.(i);
        valid_next.(i) <- true
      end
    done
  in
  let random_genome () =
    let g = Array.init n (fun _ -> Rng.bernoulli rng ~p:config.init_select_prob) in
    (* an empty genome is useless; force one bit *)
    if not (Array.exists Fun.id g) then g.(Rng.int rng n) <- true;
    g
  in
  let population = ref (Array.init pop (fun _ -> random_genome ())) in
  Array.fill parents 0 pop (-1);
  eval_batch !population (states_prev, valid_prev) (states_next, valid_next);
  let prev = ref (states_next, valid_next) and next = ref (states_prev, valid_prev) in
  let tournament () =
    let best = ref (Rng.int rng pop) in
    for _ = 2 to config.tournament_size do
      let c = Rng.int rng pop in
      if scores.(c) > scores.(!best) then best := c
    done;
    !best
  in
  let mutate g =
    Array.iteri (fun i b -> if Rng.bernoulli rng ~p:config.mutation_rate then g.(i) <- not b) g;
    if not (Array.exists Fun.id g) then g.(Rng.int rng n) <- true
  in
  let best_of () =
    let best = ref 0 in
    Array.iteri (fun i s -> if s > scores.(!best) then best := i) scores;
    !best
  in
  let history = ref [] in
  let stall = ref 0 in
  let generation = ref 0 in
  let best_ever = ref (Array.copy !population.(best_of ())) in
  let best_ever_score = ref scores.(best_of ()) in
  while !generation < config.max_generations && !stall < config.stall_generations do
    incr generation;
    Obs.incr m_generations;
    (* elitism: carry the best genomes over unchanged *)
    let order = Array.init pop Fun.id in
    Array.sort (fun a b -> compare scores.(b) scores.(a)) order;
    let make_child i =
      if i < config.elite then begin
        parents.(i) <- order.(i);
        Array.copy !population.(order.(i))
      end
      else begin
        let ia = tournament () in
        let ib = tournament () in
        let a = !population.(ia) in
        (* either way the child descends from [ia]: a crossover child in a
           converging population differs from parent [a] only where the
           parents disagree *and* the coin picked [b], so the delta path
           usually beats a full rebuild for it too — [eval_batch] decides
           per child from the actual bit distance *)
        parents.(i) <- ia;
        let child =
          if Rng.bernoulli rng ~p:config.crossover_rate then begin
            let b = !population.(ib) in
            Array.init n (fun j -> if Rng.bool rng then a.(j) else b.(j))
          end
          else Array.copy a
        in
        mutate child;
        child
      end
    in
    let children = Array.init pop make_child in
    eval_batch children !prev !next;
    population := children;
    let tmp = !prev in
    prev := !next;
    next := tmp;
    let b = best_of () in
    if scores.(b) > !best_ever_score +. 1e-12 then begin
      best_ever_score := scores.(b);
      best_ever := Array.copy !population.(b);
      stall := 0
    end
    else incr stall;
    history := !best_ever_score :: !history
  done;
  let selected = subset_of_genome !best_ever in
  {
    selected;
    fitness = !best_ever_score;
    rho = Fitness.rho fitness selected;
    generations_run = !generation;
    best_history = Array.of_list (List.rev !history);
    evaluations = !evaluations;
  }

let run ?(config = default_config) ?(pool = Pool.sequential) ~rng fitness =
  Obs.span "select.ga" (fun () -> run_body ~config ~pool ~rng fitness)
