(** Fitness of characteristic subsets.

    Both reduction methods of section V judge a subset S of the N
    characteristics by how well pairwise benchmark distances computed in
    the reduced space correlate with distances in the full normalized
    space.  This module precomputes the per-pair, per-characteristic
    squared differences once, in a flat row-major buffer, so that
    evaluating a subset is a single fused pass over the pairs with no
    intermediate allocation — which is what makes the genetic algorithm
    and the correlation-elimination sweep affordable.

    [rho]/[paper_fitness] are bit-identical to the naive reference path
    [Correlation.pearson (Distance.subset_distances components subset)
    (Distance.condensed normalized)]; the {!Subset} delta updates agree
    with a full recompute up to the floating-point tolerance documented in
    DESIGN.md §9. *)

type t

val create : Mica_stats.Matrix.t -> t
(** [create normalized] builds the evaluation context from an
    observations-by-characteristics matrix that is already normalized
    (z-scored).  Requires at least 2 observations. *)

val n_characteristics : t -> int
val n_pairs : t -> int

val full_distances : t -> float array
(** Condensed pairwise distances using all characteristics. *)

val distances_for : t -> int array -> float array
(** Condensed pairwise distances using only the given characteristic
    indices. *)

val rho : t -> int array -> float
(** Pearson correlation between the subset-space distances and the
    full-space distances.  0 for the empty subset.  Evaluates through a
    scratch buffer owned by [t]: single-domain use only — parallel
    callers evaluate through their own {!context}. *)

val paper_fitness : t -> int array -> float
(** The paper's GA fitness [f = rho * (1 - n/N)]. *)

type ctx
(** A per-domain evaluation context: [t] plus a private scratch buffer,
    so worker domains can evaluate subsets concurrently with zero
    allocation per evaluation and no shared mutable state. *)

val context : t -> ctx
val rho_with : ctx -> int array -> float
val fitness_with : ctx -> int array -> float

(** Mutable subset state with O(pairs) add/remove updates.

    [sums] holds, per pair, the sum of squared differences over the
    current members; adding or removing a column is one elementwise pass
    ([sum +/- column]), and [rho] evaluates the Pearson correlation from
    the square roots of those sums.  This is what makes each
    correlation-elimination step O(pairs) instead of O(k * pairs), and
    gives the GA a delta path for genomes that differ from an evaluated
    parent in few bits.

    Delta updates accumulate floating-point drift relative to an
    in-order full recompute; [rebuild] resets it.  All elementwise phases
    accept an optional pool and are bit-identical at any [jobs] (each
    pair slot is written independently; reductions stay sequential). *)
module Subset : sig
  type fitness := t
  type t

  val make : fitness -> t
  (** The empty subset. *)

  val of_cols : ?pool:Mica_util.Pool.t -> fitness -> int array -> t
  (** Subset with the given member columns, sums computed in ascending
      column order (no drift).  Raises [Invalid_argument] on an
      out-of-range column. *)

  val set_cols : ?pool:Mica_util.Pool.t -> t -> int array -> unit
  (** Reset the membership to exactly the given columns and recompute the
      sums in-order (as {!of_cols}, reusing the state's storage). *)

  val blit : src:t -> dst:t -> unit
  (** Copy membership and running sums from [src] to [dst] (same
      underlying fitness; O(pairs), no allocation). *)

  val copy : t -> t
  val cardinal : t -> int
  val mem : t -> int -> bool

  val cols : t -> int array
  (** Member columns in ascending order. *)

  val add : ?pool:Mica_util.Pool.t -> t -> int -> unit
  val remove : ?pool:Mica_util.Pool.t -> t -> int -> unit
  (** O(pairs) delta update; no-ops when membership already matches. *)

  val rebuild : ?pool:Mica_util.Pool.t -> t -> unit
  (** Recompute sums from the components in ascending column order,
      clearing accumulated delta drift. *)

  val rho : ?pool:Mica_util.Pool.t -> t -> float
  val fitness : ?pool:Mica_util.Pool.t -> t -> float

  val rho_without : ?pool:Mica_util.Pool.t -> ?buf:float array -> t -> int -> float
  (** [rho_without s c]: rho of the current subset with column [c] left
      out, via [sqrt (sums - column c)] in one O(pairs) pass; [s] is not
      modified.  [buf] (length [n_pairs]) overrides the internal distance
      buffer so concurrent candidate evaluations can share [s]. *)
end
