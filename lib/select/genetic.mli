(** Genetic algorithm for key-characteristic selection (section V-B).

    Genomes are bitmasks over the N characteristics.  The fitness is the
    paper's [f = rho * (1 - n/N)]: reward subsets whose distances correlate
    with the full space, penalize subset size.  Tournament selection,
    uniform crossover, per-bit mutation, elitism, and a convergence stop
    when the best fitness has not improved for [stall_generations].

    Each generation's cache-miss genomes are evaluated as one batch over
    the optional pool.  The batch grouping is sequential and keyed on
    genome content, so the result is bit-identical at any pool size; the
    random stream is consumed only while breeding, never during
    evaluation. *)

type config = {
  population : int;
  max_generations : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;  (** per-bit flip probability *)
  elite : int;  (** genomes copied unchanged each generation *)
  stall_generations : int;  (** stop after this many generations without improvement *)
  init_select_prob : float;  (** per-bit probability of 1 in the initial population *)
  delta_eval : bool;
      (** evaluate a mutated copy of an evaluated parent by carrying the
          parent's running per-pair sums and flipping only the differing
          columns (O(diff * pairs) instead of O(subset * pairs)).  Scores
          then agree with the full in-order evaluation up to the delta
          tolerance of DESIGN.md §9; set to [false] for scores bit-identical
          to the naive reference path. *)
}

val default_config : config
(** [delta_eval] defaults to [true]. *)

type result = {
  selected : int array;  (** chosen characteristic indices, ascending *)
  fitness : float;
  rho : float;  (** distance correlation of the chosen subset *)
  generations_run : int;
  best_history : float array;  (** best fitness per generation *)
  evaluations : int;  (** distinct genomes evaluated *)
}

val run :
  ?config:config -> ?pool:Mica_util.Pool.t -> rng:Mica_util.Rng.t -> Fitness.t -> result
