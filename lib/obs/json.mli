(** Minimal JSON reader used by the metrics exporter round-trip tests and
    the [mica profile --check] validator.  Accepts standard JSON plus the
    bare tokens [nan], [inf] and [-inf] that the exporter may emit for
    non-finite floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries a byte offset. *)

val parse_exn : string -> t
(** Like {!parse} but raises [Failure]. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or non-object. *)

val to_num : t -> float option
val to_str : t -> string option
