(** Minimal JSON reader used by the metrics exporter round-trip tests and
    the [mica profile --check] validator.  Accepts standard JSON plus the
    bare tokens [nan], [inf] and [-inf] that the exporter may emit for
    non-finite floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document.  [Error msg] carries a byte offset. *)

val parse_exn : string -> t
(** Like {!parse} but raises [Failure]. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize.  Object key order is preserved exactly as constructed, so
    output is byte-stable and suitable for golden tests and checksumming.
    Integral floats print without a fractional part; non-finite floats
    print as the bare [nan]/[inf]/[-inf] tokens {!parse} accepts.  With
    [~pretty:true] the document is indented two spaces per level. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or non-object. *)

val to_num : t -> float option
val to_str : t -> string option
