(** Process-wide metrics registry and span tracer.

    Design contract (DESIGN.md §11):

    - {b Inert when disabled.}  Every probe site begins with a single
      [Atomic.get] of the global enable flag; when metrics are off that load
      is the entire cost and no state is touched, so instrumented code paths
      stay bit-identical to uninstrumented ones.
    - {b Lock-free hot path.}  Each domain owns a private store (flat float
      slabs for counters/gauges/histograms, a hash table of span statistics,
      a span stack) reached through [Domain.DLS]; probes never take a lock.
      Stores are enrolled in a global list at creation, under a mutex, so
      statistics survive domain shutdown (e.g. [Pool] worker recycling) and
      [snapshot] can merge them later.
    - {b Observation only.}  Nothing in this module feeds back into pipeline
      logic; readings are aggregated exclusively by [snapshot]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every counter/gauge/histogram cell, span statistic and recorded
    event in every enrolled store.  Registered metric names survive.  Call
    only when no other domain is actively probing. *)

(** {1 Metrics}

    Metric handles are registered once (typically at module initialisation)
    and are cheap immutable records; registering the same name twice returns
    an equivalent handle, registering the same name with a different kind
    raises [Invalid_argument]. *)

type metric

val counter : string -> metric
val gauge : string -> metric
val histogram : string -> metric

val incr : metric -> unit
(** Counter += 1.  No-op when disabled or on non-counters. *)

val add : metric -> float -> unit
(** Counter += v.  No-op when disabled or on non-counters. *)

val set : metric -> float -> unit
(** Gauge := v (per-domain; cross-domain merge sums).  No-op when disabled. *)

val observe : metric -> float -> unit
(** Record one histogram sample.  No-op when disabled or on non-histograms. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when enabled, attributes its wall time and
    GC minor/major word deltas to [name].  Spans nest: a span's [self]
    time excludes time spent in child spans started on the same domain.
    The span is closed even if [f] raises. *)

(** {1 Event recording}

    Optional per-domain enter/exit event journal used by tests to
    reconstruct the span tree.  Off by default (independently of
    {!set_enabled}); events record only when both flags are on. *)

val set_record_events : bool -> unit

type event = { ev_name : string; ev_enter : bool; ev_time : float }

val events : unit -> (int * event list) list
(** Recorded events grouped per store (one store per domain incarnation),
    each list in chronological order.  The [int] is an opaque store id. *)

(** {1 Snapshots and exporters} *)

type histogram_value = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty *)
  h_max : float;  (** [nan] when empty *)
  h_buckets : (float * int) array;
      (** Cumulative (upper_bound, count) pairs, Prometheus-style; the last
          bound is [infinity]. *)
}

type metric_value =
  | Counter of float
  | Gauge of float
  | Histogram of histogram_value

type span_stat = {
  sp_count : int;
  sp_total_s : float;
  sp_self_s : float;
  sp_minor_words : float;
  sp_major_words : float;
}

type snapshot = {
  metrics : (string * metric_value) list;  (** sorted by name *)
  spans : (string * span_stat) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Merge every enrolled store.  Counters, gauges, histogram cells and span
    statistics sum across domains.  Reads are unsynchronised with respect to
    concurrently probing domains (each cell is single-writer, so a snapshot
    taken while workers run may lag but never corrupts). *)

val to_json : snapshot -> string
val to_prometheus : snapshot -> string

val write_json : string -> snapshot -> unit
(** Write {!to_json} to a file (atomic tmp+rename). *)
