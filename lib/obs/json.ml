type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %C, found %C" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "invalid literal, expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail c.pos "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail c.pos "invalid \\u escape"
                in
                c.pos <- c.pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are not
                   recombined (the exporter never emits them). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail (c.pos - 1) "invalid escape character");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail start (Printf.sprintf "invalid number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let members = ref [] in
        let rec go () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          members := (key, v) :: !members;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some '}' -> advance c
          | _ -> fail c.pos "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !members)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          let v = parse_value c in
          items := v :: !items;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              go ()
          | Some ']' -> advance c
          | _ -> fail c.pos "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' ->
      if c.pos + 3 <= String.length c.src && String.sub c.src c.pos 3 = "nan" then begin
        c.pos <- c.pos + 3;
        Num Float.nan
      end
      else literal c "null" Null
  | Some 'i' -> literal c "inf" (Num Float.infinity)
  | Some '-' when c.pos + 4 <= String.length c.src && String.sub c.src c.pos 4 = "-inf" ->
      c.pos <- c.pos + 4;
      Num Float.neg_infinity
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character %C" ch)

let parse src =
  let c = { src; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length src then fail c.pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at byte %d: %s" pos msg)

let parse_exn src =
  match parse src with Ok v -> v | Error msg -> failwith ("Json.parse: " ^ msg)

(* ---------------- writer ----------------

   The inverse of [parse], used by the run-directory subsystem to commit
   manifests and comparison reports.  Key order is preserved exactly as
   given (writers build ordered assoc lists), so serialized documents are
   stable byte-for-byte and can be golden-tested and checksummed.
   Non-finite floats are emitted as the bare tokens the parser accepts. *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      newline ();
      List.iteri
        (fun i v ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          go (depth + 1) v)
        items;
      newline ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      newline ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            newline ()
          end;
          pad (depth + 1);
          escape_to buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          go (depth + 1) v)
        kvs;
      newline ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
