(* Global enable flags.  Every probe site performs exactly one [Atomic.get]
   when metrics are disabled; nothing else is touched. *)

let enabled_flag = Atomic.make false
let record_events_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let set_record_events b = Atomic.set record_events_flag b

type kind = Kcounter | Kgauge | Khistogram

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khistogram -> "histogram"

type metric = { m_kind : kind; m_slot : int }

(* Histogram bucket upper bounds (seconds-ish scale); the implicit final
   bucket is +inf.  Cumulative counts, Prometheus-style. *)
let bucket_bounds = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0; 100.0; 1000.0 |]
let n_buckets = Array.length bucket_bounds + 1

(* Per-histogram-slot cell layout inside the flat slab:
   [count; sum; min; max; bucket_0 .. bucket_n-1]. *)
let hist_cell_size = 4 + n_buckets

type span_cell = {
  mutable sc_count : int;
  mutable sc_total : float;
  mutable sc_self : float;
  mutable sc_minor : float;
  mutable sc_major : float;
}

type event = { ev_name : string; ev_enter : bool; ev_time : float }

(* One store per domain incarnation.  All mutation is single-writer (the
   owning domain); [snapshot]/[reset] read and clear under the registry
   mutex, which is racy versus a live owner but never corrupting — each
   cell is an independent word. *)
type store = {
  st_id : int;
  mutable st_counters : float array;
  mutable st_gauges : float array;
  mutable st_hists : float array; (* hist_cell_size floats per slot *)
  st_spans : (string, span_cell) Hashtbl.t;
  (* Span stack as parallel arrays: no per-span record allocation. *)
  mutable sk_cell : span_cell array;
  mutable sk_name : string array;
  mutable sk_t0 : float array;
  mutable sk_minor0 : float array;
  mutable sk_major0 : float array;
  mutable sk_child : float array;
  mutable sk_depth : int;
  mutable st_events : event list; (* reversed *)
}

let registry_mutex = Mutex.create ()

(* name -> (kind, slot); slots are dense per kind. *)
let registry : (string, kind * int) Hashtbl.t = Hashtbl.create 64
let counter_slots = ref 0
let gauge_slots = ref 0
let hist_slots = ref 0
let stores : store list ref = ref []
let next_store_id = ref 0

let dummy_cell = { sc_count = 0; sc_total = 0.; sc_self = 0.; sc_minor = 0.; sc_major = 0. }

let new_store () =
  Mutex.lock registry_mutex;
  let id = !next_store_id in
  incr next_store_id;
  let st =
    {
      st_id = id;
      st_counters = Array.make (max 8 !counter_slots) 0.0;
      st_gauges = Array.make (max 8 !gauge_slots) 0.0;
      st_hists = Array.make (max 8 (!hist_slots * hist_cell_size)) 0.0;
      st_spans = Hashtbl.create 32;
      sk_cell = Array.make 16 dummy_cell;
      sk_name = Array.make 16 "";
      sk_t0 = Array.make 16 0.0;
      sk_minor0 = Array.make 16 0.0;
      sk_major0 = Array.make 16 0.0;
      sk_child = Array.make 16 0.0;
      sk_depth = 0;
      st_events = [];
    }
  in
  stores := st :: !stores;
  Mutex.unlock registry_mutex;
  st

let store_key = Domain.DLS.new_key new_store
let store () = Domain.DLS.get store_key

let register name kind =
  Mutex.lock registry_mutex;
  let result =
    match Hashtbl.find_opt registry name with
    | Some (k, slot) ->
        if k <> kind then
          `Err
            (Printf.sprintf "Obs: metric %S already registered as %s, requested %s" name
               (kind_name k) (kind_name kind))
        else `Ok { m_kind = kind; m_slot = slot }
    | None ->
        let slots =
          match kind with
          | Kcounter -> counter_slots
          | Kgauge -> gauge_slots
          | Khistogram -> hist_slots
        in
        let slot = !slots in
        incr slots;
        Hashtbl.add registry name (kind, slot);
        `Ok { m_kind = kind; m_slot = slot }
  in
  Mutex.unlock registry_mutex;
  match result with `Ok m -> m | `Err msg -> invalid_arg msg

let counter name = register name Kcounter
let gauge name = register name Kgauge
let histogram name = register name Khistogram

(* Slabs grow lazily: a metric registered after this domain's store was
   created lands past the end of the slab on first use. *)
let grown arr needed =
  let cap = max needed (2 * Array.length arr) in
  let fresh = Array.make cap 0.0 in
  Array.blit arr 0 fresh 0 (Array.length arr);
  fresh

let counter_slab st slot =
  if slot >= Array.length st.st_counters then st.st_counters <- grown st.st_counters (slot + 1);
  st.st_counters

let gauge_slab st slot =
  if slot >= Array.length st.st_gauges then st.st_gauges <- grown st.st_gauges (slot + 1);
  st.st_gauges

let hist_slab st slot =
  let needed = (slot + 1) * hist_cell_size in
  if needed > Array.length st.st_hists then st.st_hists <- grown st.st_hists needed;
  st.st_hists

let add m v =
  if Atomic.get enabled_flag && m.m_kind = Kcounter then begin
    let st = store () in
    let slab = counter_slab st m.m_slot in
    slab.(m.m_slot) <- slab.(m.m_slot) +. v
  end

let incr m = add m 1.0

let set m v =
  if Atomic.get enabled_flag && m.m_kind = Kgauge then begin
    let st = store () in
    let slab = gauge_slab st m.m_slot in
    slab.(m.m_slot) <- v
  end

let observe m v =
  if Atomic.get enabled_flag && m.m_kind = Khistogram then begin
    let st = store () in
    let slab = hist_slab st m.m_slot in
    let base = m.m_slot * hist_cell_size in
    let count = slab.(base) in
    slab.(base) <- count +. 1.0;
    slab.(base + 1) <- slab.(base + 1) +. v;
    if count = 0.0 then begin
      slab.(base + 2) <- v;
      slab.(base + 3) <- v
    end
    else begin
      if v < slab.(base + 2) then slab.(base + 2) <- v;
      if v > slab.(base + 3) then slab.(base + 3) <- v
    end;
    let rec bucket i =
      if i >= Array.length bucket_bounds then i
      else if v <= bucket_bounds.(i) then i
      else bucket (i + 1)
    in
    let b = bucket 0 in
    slab.(base + 4 + b) <- slab.(base + 4 + b) +. 1.0
  end

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)

let span_cell st name =
  match Hashtbl.find_opt st.st_spans name with
  | Some c -> c
  | None ->
      let c = { sc_count = 0; sc_total = 0.; sc_self = 0.; sc_minor = 0.; sc_major = 0. } in
      Hashtbl.add st.st_spans name c;
      c

let grow_stack st =
  let cap = 2 * Array.length st.sk_name in
  let g_cell = Array.make cap dummy_cell
  and g_name = Array.make cap ""
  and g_t0 = Array.make cap 0.0
  and g_minor0 = Array.make cap 0.0
  and g_major0 = Array.make cap 0.0
  and g_child = Array.make cap 0.0 in
  let n = Array.length st.sk_name in
  Array.blit st.sk_cell 0 g_cell 0 n;
  Array.blit st.sk_name 0 g_name 0 n;
  Array.blit st.sk_t0 0 g_t0 0 n;
  Array.blit st.sk_minor0 0 g_minor0 0 n;
  Array.blit st.sk_major0 0 g_major0 0 n;
  Array.blit st.sk_child 0 g_child 0 n;
  st.sk_cell <- g_cell;
  st.sk_name <- g_name;
  st.sk_t0 <- g_t0;
  st.sk_minor0 <- g_minor0;
  st.sk_major0 <- g_major0;
  st.sk_child <- g_child

let span_enter st name =
  let d = st.sk_depth in
  if d >= Array.length st.sk_name then grow_stack st;
  st.sk_cell.(d) <- span_cell st name;
  st.sk_name.(d) <- name;
  st.sk_t0.(d) <- Unix.gettimeofday ();
  st.sk_minor0.(d) <- Gc.minor_words ();
  st.sk_major0.(d) <- (Gc.quick_stat ()).Gc.major_words;
  st.sk_child.(d) <- 0.0;
  st.sk_depth <- d + 1;
  if Atomic.get record_events_flag then
    st.st_events <- { ev_name = name; ev_enter = true; ev_time = st.sk_t0.(d) } :: st.st_events

let span_exit st =
  let d = st.sk_depth - 1 in
  st.sk_depth <- d;
  let now = Unix.gettimeofday () in
  let elapsed = now -. st.sk_t0.(d) in
  let c = st.sk_cell.(d) in
  c.sc_count <- c.sc_count + 1;
  c.sc_total <- c.sc_total +. elapsed;
  c.sc_self <- c.sc_self +. (elapsed -. st.sk_child.(d));
  c.sc_minor <- c.sc_minor +. (Gc.minor_words () -. st.sk_minor0.(d));
  c.sc_major <- c.sc_major +. ((Gc.quick_stat ()).Gc.major_words -. st.sk_major0.(d));
  if d > 0 then st.sk_child.(d - 1) <- st.sk_child.(d - 1) +. elapsed;
  if Atomic.get record_events_flag then
    st.st_events <- { ev_name = st.sk_name.(d); ev_enter = false; ev_time = now } :: st.st_events

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = store () in
    span_enter st name;
    Fun.protect ~finally:(fun () -> span_exit st) f
  end

let events () =
  Mutex.lock registry_mutex;
  let out =
    List.rev_map (fun st -> (st.st_id, List.rev st.st_events)) !stores
    |> List.filter (fun (_, evs) -> evs <> [])
  in
  Mutex.unlock registry_mutex;
  out

(* ------------------------------------------------------------------ *)
(* Snapshot                                                           *)

type histogram_value = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * int) array;
}

type metric_value = Counter of float | Gauge of float | Histogram of histogram_value

type span_stat = {
  sp_count : int;
  sp_total_s : float;
  sp_self_s : float;
  sp_minor_words : float;
  sp_major_words : float;
}

type snapshot = {
  metrics : (string * metric_value) list;
  spans : (string * span_stat) list;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let stores = !stores in
  let metric_names = Hashtbl.fold (fun name def acc -> (name, def) :: acc) registry [] in
  let sum_slot get slot =
    List.fold_left
      (fun acc st ->
        let arr = get st in
        if slot < Array.length arr then acc +. arr.(slot) else acc)
      0.0 stores
  in
  let metrics =
    List.map
      (fun (name, (kind, slot)) ->
        let v =
          match kind with
          | Kcounter -> Counter (sum_slot (fun st -> st.st_counters) slot)
          | Kgauge -> Gauge (sum_slot (fun st -> st.st_gauges) slot)
          | Khistogram ->
              let base = slot * hist_cell_size in
              let cell = Array.make hist_cell_size 0.0 in
              cell.(2) <- Float.nan;
              cell.(3) <- Float.nan;
              List.iter
                (fun st ->
                  if base + hist_cell_size <= Array.length st.st_hists then begin
                    let h = st.st_hists in
                    if h.(base) > 0.0 then begin
                      cell.(0) <- cell.(0) +. h.(base);
                      cell.(1) <- cell.(1) +. h.(base + 1);
                      if Float.is_nan cell.(2) || h.(base + 2) < cell.(2) then
                        cell.(2) <- h.(base + 2);
                      if Float.is_nan cell.(3) || h.(base + 3) > cell.(3) then
                        cell.(3) <- h.(base + 3);
                      for b = 0 to n_buckets - 1 do
                        cell.(4 + b) <- cell.(4 + b) +. h.(base + 4 + b)
                      done
                    end
                  end)
                stores;
              let cumulative = ref 0 in
              let buckets =
                Array.init n_buckets (fun b ->
                    cumulative := !cumulative + int_of_float cell.(4 + b);
                    let bound =
                      if b < Array.length bucket_bounds then bucket_bounds.(b)
                      else Float.infinity
                    in
                    (bound, !cumulative))
              in
              Histogram
                {
                  h_count = int_of_float cell.(0);
                  h_sum = cell.(1);
                  h_min = cell.(2);
                  h_max = cell.(3);
                  h_buckets = buckets;
                }
        in
        (name, v))
      metric_names
  in
  let span_tbl : (string, span_stat) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name c ->
          let prev =
            match Hashtbl.find_opt span_tbl name with
            | Some s -> s
            | None ->
                { sp_count = 0; sp_total_s = 0.; sp_self_s = 0.; sp_minor_words = 0.; sp_major_words = 0. }
          in
          Hashtbl.replace span_tbl name
            {
              sp_count = prev.sp_count + c.sc_count;
              sp_total_s = prev.sp_total_s +. c.sc_total;
              sp_self_s = prev.sp_self_s +. c.sc_self;
              sp_minor_words = prev.sp_minor_words +. c.sc_minor;
              sp_major_words = prev.sp_major_words +. c.sc_major;
            })
        st.st_spans)
    stores;
  Mutex.unlock registry_mutex;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    metrics = List.sort by_name metrics;
    spans = List.sort by_name (Hashtbl.fold (fun k v acc -> (k, v) :: acc) span_tbl []);
  }

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun st ->
      Array.fill st.st_counters 0 (Array.length st.st_counters) 0.0;
      Array.fill st.st_gauges 0 (Array.length st.st_gauges) 0.0;
      Array.fill st.st_hists 0 (Array.length st.st_hists) 0.0;
      Hashtbl.reset st.st_spans;
      st.st_events <- [])
    !stores;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Exporters                                                          *)

let float_str f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%.17g" f

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"metrics\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": " (escape_json name));
      (match v with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "{\"type\": \"counter\", \"value\": %s}" (float_str c))
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "{\"type\": \"gauge\", \"value\": %s}" (float_str g))
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\": \"histogram\", \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"buckets\": ["
               h.h_count (float_str h.h_sum) (float_str h.h_min) (float_str h.h_max));
          Array.iteri
            (fun i (bound, count) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf (Printf.sprintf "[%s, %d]" (float_str bound) count))
            h.h_buckets;
          Buffer.add_string buf "]}"))
    snap.metrics;
  Buffer.add_string buf "\n  },\n  \"spans\": {";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    \"%s\": {\"count\": %d, \"total_s\": %s, \"self_s\": %s, \"minor_words\": %s, \"major_words\": %s}"
           (escape_json name) s.sp_count (float_str s.sp_total_s) (float_str s.sp_self_s)
           (float_str s.sp_minor_words) (float_str s.sp_major_words)))
    snap.spans;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let prom_name name =
  let b = Buffer.create (String.length name + 5) in
  Buffer.add_string b "mica_";
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %s\n" n n (float_str c))
      | Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (float_str g))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
          Array.iter
            (fun (bound, count) ->
              let le = if bound = Float.infinity then "+Inf" else float_str bound in
              Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le count))
            h.h_buckets;
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (float_str h.h_sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.h_count))
    snap.metrics;
  List.iter
    (fun (name, s) ->
      let n = prom_name ("span_" ^ name) in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s_seconds counter\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_seconds %s\n" n (float_str s.sp_total_s));
      Buffer.add_string buf (Printf.sprintf "%s_self_seconds %s\n" n (float_str s.sp_self_s));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.sp_count);
      Buffer.add_string buf (Printf.sprintf "%s_minor_words %s\n" n (float_str s.sp_minor_words)))
    snap.spans;
  Buffer.contents buf

let write_json path snap =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json snap));
  Sys.rename tmp path
